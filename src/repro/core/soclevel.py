"""SOC-level decompressor ("virtual TAM") architecture.

Stand-in for the paper's comparator [18] (Sehgal, Iyengar, Chakrabarty,
TVLSI 2004): a *single* decompressor at the chip boundary expands a few
ATE channels into a wide internal TAM, and a conventional (no-TDC)
test-architecture optimization runs behind it.  The paper's qualitative
point -- reproduced by our Tables 1/2 benches -- is that this uses very
few ATE channels but "extensive and costly TAMs" on chip, and at an
equal *TAM-wire* budget it loses to per-core decompression.

Model.  The internal architecture is the no-TDC optimum at
``internal_width`` wires.  The ATE image is the selective encoding of
the internal TAM's cycle-by-cycle slices (width ``internal_width``), so
the code width is ``ceil(log2(internal_width + 1)) + 2``, which must fit
the ATE channel budget.  The codeword count is estimated as

    T_internal  +  sum over cores of (group-adjusted target-bit count)

-- one END codeword minimum per internal cycle, plus the per-core care
data, with group-copy savings computed at the internal group size.
Cross-core group coupling (two cores' targets landing in the same group
of the merged slice) is ignored; it can only *reduce* the count, and is
second-order at industrial care densities.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.core.optimizer import OptimizeResult, optimize_soc
from repro.compression.selective import GROUP_COPY_THRESHOLD, code_parameters
from repro.compression.estimator import DEFAULT_SAMPLES
from repro.explore.dse import DEFAULT_GRID, Mode, analysis_for
from repro.soc.soc import Soc
from repro.wrapper.design import design_wrapper


def _adjusted_target_bits(
    core, tam_width: int, group_bits: int, *, samples: int
) -> int:
    """Expected group-adjusted target-codeword count for one core.

    Like :func:`repro.compression.estimator.estimate_slice_costs` but
    without the per-slice END codeword (the SOC-level stream pays END
    once per *internal* cycle, not per core) and with the group size of
    the SOC-level code.
    """
    design = design_wrapper(core, tam_width)
    si = design.scan_in_max
    if si == 0:
        return 0
    active = design.active_inputs_per_slice()
    picks = np.minimum(
        ((np.arange(samples) + 0.5) * si / samples).astype(np.int64), si - 1
    )
    rng = np.random.default_rng((core.seed * 0x9E3779B1 ^ tam_width) & 0x7FFFFFFF)
    care = rng.binomial(active[picks], core.care_bit_density)
    ones = rng.binomial(care, core.one_fraction)
    targets = np.minimum(ones, care - ones)
    # Group savings: the core's slice occupies ~tam_width positions of
    # the internal slice, i.e. about tam_width / group_bits groups.
    num_groups = max(1, -(-tam_width // group_bits))
    total_targets = int(targets.sum())
    slice_ids = np.repeat(np.arange(samples), targets)
    group_ids = rng.integers(0, num_groups, size=total_targets)
    per_group = np.bincount(
        slice_ids * num_groups + group_ids, minlength=samples * num_groups
    ).reshape(samples, num_groups)
    cost = np.where(per_group >= GROUP_COPY_THRESHOLD, 2, per_group)
    mean = float(cost.sum(axis=1).mean())
    return int(round(mean * core.patterns * si))


def optimize_soc_level_decompressor(
    soc: Soc,
    ate_channels: int,
    *,
    internal_width: int | None = None,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tams: int | None = None,
) -> OptimizeResult:
    """Plan an SOC test with one chip-level decompressor.

    ``internal_width`` defaults to the widest internal TAM the code can
    address from the given channel budget, capped at what the SOC can
    use; pass an explicit value to study the trade-off.
    """
    if ate_channels < 4:
        raise ValueError(
            f"SOC-level decompression needs >= 4 ATE channels, got {ate_channels}"
        )
    started = _time.perf_counter()
    k = ate_channels - 2  # payload bits available at the chip boundary
    addressable = 2**k - 1
    useful_cap = sum(core.max_useful_wrapper_chains for core in soc.cores)
    if internal_width is None:
        internal_width = min(addressable, useful_cap, 8 * ate_channels)
    if internal_width < 1:
        raise ValueError("internal width must be >= 1")
    if internal_width > addressable:
        raise ValueError(
            f"internal width {internal_width} not addressable with "
            f"{ate_channels} ATE channels (max {addressable})"
        )

    internal = optimize_soc(
        soc,
        internal_width,
        compression=False,
        mode=mode,
        samples=samples,
        grid=grid,
        max_tams=max_tams,
    )
    group_bits, code_width = code_parameters(internal_width)

    # Per-core adjusted care cost at its internal TAM width.
    width_of_tam = {t.index: t.width for t in internal.architecture.tams}
    extra = 0
    scheduled: list[ScheduledCore] = []
    for item in internal.architecture.scheduled:
        core = soc.core(item.config.core_name)
        tam_width = width_of_tam[item.tam_index]
        extra += _adjusted_target_bits(core, tam_width, group_bits, samples=samples)
        scheduled.append(item)

    internal_cycles = internal.architecture.test_time
    total_codewords = internal_cycles + extra
    volume = total_codewords * code_width

    # Re-express the architecture: same internal TAMs and slots, but the
    # placement/channel bookkeeping reflects the chip-level decompressor.
    # Per-core volumes are not individually meaningful in this model, so
    # the stream volume is attached pro rata by slot length.
    configs: list[ScheduledCore] = []
    for item in scheduled:
        share = (
            volume * (item.end - item.start) // max(1, internal_cycles)
            if internal_cycles
            else 0
        )
        configs.append(
            ScheduledCore(
                config=CoreConfig(
                    core_name=item.config.core_name,
                    uses_compression=True,
                    wrapper_chains=item.config.wrapper_chains,
                    code_width=code_width,
                    test_time=item.config.test_time,
                    volume=share,
                ),
                tam_index=item.tam_index,
                start=item.start,
                end=item.end,
            )
        )
    architecture = TestArchitecture(
        soc_name=soc.name,
        placement=DecompressorPlacement.SOC_LEVEL,
        tams=tuple(
            Tam(index=t.index, width=t.width) for t in internal.architecture.tams
        ),
        scheduled=tuple(configs),
        ate_channels=ate_channels,
    )
    elapsed = _time.perf_counter() - started

    return OptimizeResult(
        soc_name=soc.name,
        width_budget=ate_channels,
        compression="soc-level",
        architecture=_with_time(architecture, total_codewords),
        cpu_seconds=elapsed,
        partitions_evaluated=internal.partitions_evaluated,
        strategy=internal.strategy,
    )


class _StretchedArchitecture(TestArchitecture):
    """Architecture whose reported test time is the ATE codeword count.

    The internal schedule finishes in ``internal_cycles`` scan cycles,
    but the ATE can feed at most one codeword per cycle, so the test
    application time is the (larger) codeword count.
    """

    def __init__(self, base: TestArchitecture, ate_cycles: int):
        object.__setattr__(self, "soc_name", base.soc_name)
        object.__setattr__(self, "placement", base.placement)
        object.__setattr__(self, "tams", base.tams)
        object.__setattr__(self, "scheduled", base.scheduled)
        object.__setattr__(self, "ate_channels", base.ate_channels)
        object.__setattr__(self, "_ate_cycles", ate_cycles)

    @property
    def test_time(self) -> int:  # type: ignore[override]
        return max(
            self._ate_cycles, max((s.end for s in self.scheduled), default=0)
        )


def _with_time(base: TestArchitecture, ate_cycles: int) -> TestArchitecture:
    return _StretchedArchitecture(base, ate_cycles)
