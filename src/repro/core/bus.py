"""Bus-based test-data transportation (extension).

The same group's companion work ("Optimization of a Bus-based Test Data
Transportation Mechanism in System-on-Chip", Larsson, Larsson, Eles,
Peng) replaces dedicated, spatially partitioned TAMs with one shared,
time-multiplexed bus: every core taps the full bus, and concurrency is
limited by *bandwidth* rather than by wire ownership.  Each core `i`
consumes `r_i` bus bits per cycle while testing (its TAM-side width:
the decompressor input `w_i` with TDC, the wrapper-chain count
without); any set of cores may run concurrently as long as
`sum r_i <= B`, the bus width.

This maps exactly onto the flat-resource scheduler of
:mod:`repro.core.timeline`: give every core its own "lane" (no wire
exclusivity) and treat the bandwidth as the power budget.  The design
freedom that remains is each core's *rate choice* `r_i` -- a fat, fast
core test versus a thin, slow one -- which
:func:`optimize_bus` resolves with a local-search over halving/raising
rates, seeded at every core's fastest configuration.

Makespan lower bounds: `max_i tau_i(B)` (the fattest single test) and
`ceil(total transported bits / B)` (bandwidth conservation); the
result reports both so the schedule's tightness is visible.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.core.timeline import ConstrainedSchedule, schedule_constrained
from repro.compression.estimator import DEFAULT_SAMPLES
from repro.explore.dse import DEFAULT_GRID, Mode, analysis_for
from repro.soc.soc import Soc


@dataclass(frozen=True)
class BusPlan:
    """A bus-based test transport plan."""

    soc_name: str
    bus_width: int
    compression: str
    rates: dict[str, int]  # per core, the bus bits/cycle it taps
    schedule: ConstrainedSchedule
    lower_bound: int
    cpu_seconds: float
    moves_evaluated: int

    @property
    def test_time(self) -> int:
        return self.schedule.makespan

    @property
    def peak_bandwidth(self) -> float:
        return self.schedule.peak_power

    @property
    def tightness(self) -> float:
        """Makespan over the bandwidth/fattest-test lower bound."""
        return self.test_time / self.lower_bound if self.lower_bound else 1.0


def optimize_bus(
    soc: Soc,
    bus_width: int,
    *,
    compression: bool | str = True,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_rounds: int = 40,
) -> BusPlan:
    """Plan a shared-bus test transport for ``soc``.

    ``compression`` follows :func:`repro.core.optimizer.optimize_soc`
    semantics (``True``/``False``/``"auto"``).
    """
    if bus_width < 1:
        raise ValueError(f"bus width must be >= 1, got {bus_width}")
    started = _time.perf_counter()
    use_compression = compression not in (False, "none")
    auto = compression == "auto"
    analyses = {
        core.name: analysis_for(core, mode=mode, samples=samples, grid=grid)
        for core in soc.cores
    }
    names = list(soc.core_names)
    if not names:
        raise ValueError("cannot plan an empty SOC")

    def pick(name: str, rate: int) -> tuple[int, int]:
        """(test time, bus bits/cycle actually consumed) at a rate grant.

        A decompressor whose best code is narrower than the grant only
        taps its code width off the bus; an uncompressed core taps the
        full grant (every wire drives a wrapper chain).
        """
        analysis = analyses[name]
        plain = analysis.uncompressed_point(rate).test_time
        if not use_compression:
            return plain, rate
        best = analysis.best_compressed_for_tam(rate)
        if best is None or (auto and plain < best.test_time):
            return plain, rate
        return best.test_time, best.code_width

    def tau(name: str, rate: int) -> int:
        return pick(name, rate)[0]

    def schedule_for(rates: dict[str, int]) -> ConstrainedSchedule:
        # One private lane per core: the bus has no wire exclusivity,
        # only the bandwidth budget constrains concurrency.
        return schedule_constrained(
            names,
            [1] * len(names),
            lambda n, _w: pick(n, rates[n])[0],
            power_of={n: float(pick(n, rates[n])[1]) for n in names},
            power_budget=float(bus_width),
        )

    # Rate choice is a coordinate search with several starting points:
    # single-coordinate moves cannot escape the all-full-rate serial
    # plan (parallelism needs two cores to slim down *together*), so we
    # also seed from uniformly thinner configurations.
    moves = 0
    best_schedule: ConstrainedSchedule | None = None
    rates: dict[str, int] = {}
    start_rates = sorted(
        {
            bus_width,
            max(1, bus_width // 2),
            max(1, bus_width // 4),
            max(1, bus_width // max(1, len(names))),
        },
        reverse=True,
    )
    for start in start_rates:
        current = {name: start for name in names}
        schedule = schedule_for(current)
        moves += 1
        improved = True
        rounds = 0
        while improved and rounds < max_rounds:
            improved = False
            rounds += 1
            for name in names:
                for candidate in (
                    max(1, current[name] // 2),
                    min(bus_width, current[name] * 2),
                ):
                    if candidate == current[name]:
                        continue
                    trial = dict(current, **{name: candidate})
                    trial_schedule = schedule_for(trial)
                    moves += 1
                    if trial_schedule.makespan < schedule.makespan:
                        current = trial
                        schedule = trial_schedule
                        improved = True
        if best_schedule is None or schedule.makespan < best_schedule.makespan:
            best_schedule = schedule
            rates = current
    assert best_schedule is not None

    # Lower bounds: bandwidth conservation + the fattest single test.
    transported = sum(
        pick(n, rates[n])[0] * pick(n, rates[n])[1] for n in names
    )
    bound = max(
        max(tau(n, bus_width) for n in names),
        -(-transported // bus_width),
    )
    elapsed = _time.perf_counter() - started
    return BusPlan(
        soc_name=soc.name,
        bus_width=bus_width,
        compression="per-core" if use_compression and not auto else (
            "auto" if auto else "none"
        ),
        rates=rates,
        schedule=best_schedule,
        lower_bound=bound,
        cpu_seconds=elapsed,
        moves_evaluated=moves,
    )
