"""Test scheduling (the paper's step 4).

Given a TAM partition (a list of widths) and, per core, a test time at
every width, the paper schedules with a longest-task-first list
heuristic: sort the cores by test time, longest first, then assign each
core to the TAM where the SOC test time grows the least.  Complexity is
O(n k) lookups for n cores and k TAMs.

Cores on a TAM are tested serially; TAMs run in parallel; the SOC test
time is the largest TAM finish time (the makespan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)

#: ``time_of(core_name, tam_width) -> test time`` lookup used while
#: scheduling; the optimizer backs it with the DSE lookup tables.
TimeFn = Callable[[str, int], int]

#: ``config_of(core_name, tam_width) -> CoreConfig`` resolves the full
#: per-core configuration once the assignment is fixed.
ConfigFn = Callable[[str, int], CoreConfig]


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of scheduling one partition."""

    widths: tuple[int, ...]
    makespan: int
    assignment: tuple[int, ...]  # per core (input order), the TAM index


def schedule_cores(
    core_names: Sequence[str],
    widths: Sequence[int],
    time_of: TimeFn,
) -> ScheduleOutcome:
    """Assign cores to TAMs with the paper's list heuristic.

    Cores are sorted by their test time on the *widest* TAM (their best
    case), longest first, then greedily placed where the resulting
    makespan is smallest; ties prefer the TAM that finishes earliest,
    then the lowest TAM index, keeping the result deterministic.
    """
    if not widths:
        raise ValueError("at least one TAM is required")
    if any(w < 1 for w in widths):
        raise ValueError(f"TAM widths must be >= 1, got {tuple(widths)}")

    widest = max(widths)
    order = sorted(
        range(len(core_names)),
        key=lambda i: (-time_of(core_names[i], widest), core_names[i]),
    )

    loads = [0] * len(widths)
    assignment = [-1] * len(core_names)
    for index in order:
        name = core_names[index]
        best_tam = -1
        best_key: tuple[int, int, int] | None = None
        current_makespan = max(loads)
        for tam, width in enumerate(widths):
            finish = loads[tam] + time_of(name, width)
            key = (max(current_makespan, finish), finish, tam)
            if best_key is None or key < best_key:
                best_key = key
                best_tam = tam
        assignment[index] = best_tam
        loads[best_tam] += time_of(name, widths[best_tam])

    return ScheduleOutcome(
        widths=tuple(widths),
        makespan=max(loads),
        assignment=tuple(assignment),
    )


def build_architecture(
    soc_name: str,
    core_names: Sequence[str],
    outcome: ScheduleOutcome,
    config_of: ConfigFn,
    *,
    placement: DecompressorPlacement,
    ate_channels: int,
) -> TestArchitecture:
    """Materialize a :class:`TestArchitecture` from a schedule outcome.

    Start times are laid out serially per TAM in the same
    longest-first order the scheduler used, so the architecture passes
    its own overlap validation and the makespan is preserved.
    """
    widths = outcome.widths
    tams = tuple(Tam(index=i, width=w) for i, w in enumerate(widths))

    # Recreate the scheduling order to lay out serial slots per TAM.
    widest = max(widths)
    order = sorted(
        range(len(core_names)),
        key=lambda i: (
            -config_of(core_names[i], widest).test_time,
            core_names[i],
        ),
    )
    loads = [0] * len(widths)
    scheduled: list[ScheduledCore] = []
    for index in order:
        name = core_names[index]
        tam = outcome.assignment[index]
        config = config_of(name, widths[tam])
        start = loads[tam]
        end = start + config.test_time
        loads[tam] = end
        scheduled.append(
            ScheduledCore(config=config, tam_index=tam, start=start, end=end)
        )

    arch = TestArchitecture(
        soc_name=soc_name,
        placement=placement,
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=ate_channels,
    )
    return arch
