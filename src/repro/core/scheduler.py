"""Test scheduling (the paper's step 4).

Given a TAM partition (a list of widths) and, per core, a test time at
every width, the paper schedules with a longest-task-first list
heuristic: sort the cores by test time, longest first, then assign each
core to the TAM where the SOC test time grows the least.  Complexity is
O(n k) lookups for n cores and k TAMs.

Cores on a TAM are tested serially; TAMs run in parallel; the SOC test
time is the largest TAM finish time (the makespan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)

#: ``time_of(core_name, tam_width) -> test time`` lookup used while
#: scheduling; the optimizer backs it with the DSE lookup tables.
TimeFn = Callable[[str, int], int]

#: ``config_of(core_name, tam_width) -> CoreConfig`` resolves the full
#: per-core configuration once the assignment is fixed.
ConfigFn = Callable[[str, int], CoreConfig]


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of scheduling one partition."""

    widths: tuple[int, ...]
    makespan: int
    assignment: tuple[int, ...]  # per core (input order), the TAM index


def schedule_cores(
    core_names: Sequence[str],
    widths: Sequence[int],
    time_of: TimeFn,
) -> ScheduleOutcome:
    """Assign cores to TAMs with the paper's list heuristic.

    Cores are sorted by their test time on the *widest* TAM (their best
    case), longest first, then greedily placed where the resulting
    makespan is smallest; ties prefer the TAM that finishes earliest,
    then the lowest TAM index, keeping the result deterministic.
    """
    if not widths:
        raise ValueError("at least one TAM is required")
    if any(w < 1 for w in widths):
        raise ValueError(f"TAM widths must be >= 1, got {tuple(widths)}")

    widest = max(widths)
    order = sorted(
        range(len(core_names)),
        key=lambda i: (-time_of(core_names[i], widest), core_names[i]),
    )

    loads = [0] * len(widths)
    assignment = [-1] * len(core_names)
    for index in order:
        name = core_names[index]
        best_tam = -1
        best_key: tuple[int, int, int] | None = None
        current_makespan = max(loads)
        for tam, width in enumerate(widths):
            finish = loads[tam] + time_of(name, width)
            key = (max(current_makespan, finish), finish, tam)
            if best_key is None or key < best_key:
                best_key = key
                best_tam = tam
        assignment[index] = best_tam
        loads[best_tam] += time_of(name, widths[best_tam])

    return ScheduleOutcome(
        widths=tuple(widths),
        makespan=max(loads),
        assignment=tuple(assignment),
    )


class TimeTable:
    """Dense, position-indexed memo over a ``time_of`` callback.

    The partition search schedules tens of thousands of partitions over
    the same handful of cores and widths; going through the generic
    ``time_of(name, width)`` callback per (core, TAM) step pays dict and
    LRU overhead millions of times.  This table resolves each width to a
    plain row of ints (indexed by core position) once, and memoizes the
    longest-first core order per widest width -- the only two lookups
    the inner loop needs.
    """

    def __init__(self, core_names: Sequence[str], time_of: TimeFn) -> None:
        self.core_names = list(core_names)
        self._time_of = time_of
        self._rows: dict[int, list[int]] = {}
        self._orders: dict[int, list[int]] = {}

    def row(self, width: int) -> list[int]:
        """Test time of every core (input order) at ``width``."""
        row = self._rows.get(width)
        if row is None:
            row = [self._time_of(name, width) for name in self.core_names]
            self._rows[width] = row
        return row

    def order(self, widest: int) -> list[int]:
        """Longest-first core order at ``widest`` (ties by name)."""
        order = self._orders.get(widest)
        if order is None:
            row = self.row(widest)
            names = self.core_names
            order = sorted(range(len(names)), key=lambda i: (-row[i], names[i]))
            self._orders[widest] = order
        return order


def schedule_cores_indexed(
    table: TimeTable, widths: Sequence[int]
) -> ScheduleOutcome:
    """Fast path of :func:`schedule_cores` over a :class:`TimeTable`.

    Bit-identical to ``schedule_cores(table.core_names, widths,
    time_of)`` -- same ordering, same tie-breaks (pinned by the
    differential suite) -- with every lookup a list index.
    """
    if not widths:
        raise ValueError("at least one TAM is required")
    if any(w < 1 for w in widths):
        raise ValueError(f"TAM widths must be >= 1, got {tuple(widths)}")

    order = table.order(max(widths))
    rows = [table.row(w) for w in widths]
    num_tams = len(widths)
    loads = [0] * num_tams
    assignment = [-1] * len(table.core_names)
    for index in order:
        current_makespan = max(loads)
        best_tam = -1
        best_key: tuple[int, int, int] | None = None
        for tam in range(num_tams):
            finish = loads[tam] + rows[tam][index]
            key = (max(current_makespan, finish), finish, tam)
            if best_key is None or key < best_key:
                best_key = key
                best_tam = tam
        assignment[index] = best_tam
        loads[best_tam] += rows[best_tam][index]

    return ScheduleOutcome(
        widths=tuple(widths),
        makespan=max(loads),
        assignment=tuple(assignment),
    )


def schedule_makespans_batch(
    table: TimeTable, partitions: Sequence[tuple[int, ...]]
) -> np.ndarray:
    """Makespan of every partition, vectorized across partitions.

    Returns an int64 array aligned with ``partitions``, equal to
    ``[schedule_cores_indexed(table, p).makespan for p in partitions]``
    (pinned by the differential suite).  The list heuristic is
    sequential over cores but embarrassingly parallel over partitions:
    grouping the partitions by (TAM count, widest width) makes every
    partition in a group place its cores in the *same* order, so the
    greedy placement advances core by core in lockstep over a
    ``(partitions, tams)`` load matrix.

    Per core the lexicographic key ``(makespan, finish, tam)`` is
    minimized in two passes -- mask to the minimum makespan, then take
    the first minimum finish -- because ``argmin`` resolving ties to the
    first position is exactly the lowest-TAM tie-break.
    """
    makespans = np.zeros(len(partitions), dtype=np.int64)
    groups: dict[tuple[int, int], list[int]] = {}
    for position, widths in enumerate(partitions):
        if not widths:
            raise ValueError("at least one TAM is required")
        if any(w < 1 for w in widths):
            raise ValueError(f"TAM widths must be >= 1, got {tuple(widths)}")
        groups.setdefault((len(widths), max(widths)), []).append(position)

    with obs.span("kernel.schedule-batch", partitions=len(partitions)):
        _schedule_groups(table, partitions, groups, makespans)
    return makespans


def _schedule_groups(
    table: TimeTable,
    partitions: Sequence[tuple[int, ...]],
    groups: dict[tuple[int, int], list[int]],
    makespans: np.ndarray,
) -> None:
    sentinel = np.iinfo(np.int64).max
    for (num_tams, widest), positions in groups.items():
        widths_arr = np.array(
            [partitions[p] for p in positions], dtype=np.int64
        )
        unique_widths = np.unique(widths_arr)
        # (cores, unique widths) time matrix; resolving the rows up
        # front also triggers any lazy fills behind ``time_of`` once.
        time_mat = np.array(
            [table.row(int(w)) for w in unique_widths], dtype=np.int64
        ).T
        width_idx = np.searchsorted(unique_widths, widths_arr)

        count = len(positions)
        loads = np.zeros((count, num_tams), dtype=np.int64)
        current = np.zeros(count, dtype=np.int64)
        rows = np.arange(count)
        for core in table.order(widest):
            finish = loads + time_mat[core][width_idx]
            span = np.maximum(current[:, None], finish)
            span_min = span.min(axis=1, keepdims=True)
            masked = np.where(span == span_min, finish, sentinel)
            best = np.argmin(masked, axis=1)
            chosen = finish[rows, best]
            loads[rows, best] = chosen
            current = np.maximum(current, chosen)
        makespans[positions] = loads.max(axis=1)


def build_architecture(
    soc_name: str,
    core_names: Sequence[str],
    outcome: ScheduleOutcome,
    config_of: ConfigFn,
    *,
    placement: DecompressorPlacement,
    ate_channels: int,
    time_of: TimeFn | None = None,
) -> TestArchitecture:
    """Materialize a :class:`TestArchitecture` from a schedule outcome.

    Start times are laid out serially per TAM in the same
    longest-first order the scheduler used, so the architecture passes
    its own overlap validation and the makespan is preserved.

    ``time_of`` should be the same lookup the scheduler ordered by.
    The scheduler sorted cores by ``time_of(name, widest)``; reordering
    here by ``config_of(name, widest).test_time`` instead is only safe
    when the two agree at the widest width.  When a caller's
    ``config_of`` disagrees (a resolver that picks a different codec
    or wrapper at materialization time), the divergent order would
    shuffle start times away from the ``ScheduleOutcome`` and the
    materialized makespan could differ from ``outcome.makespan`` --
    so pass ``time_of`` whenever it is available; the ``config_of``
    fallback exists for callers that genuinely have only configs.
    """
    widths = outcome.widths
    tams = tuple(Tam(index=i, width=w) for i, w in enumerate(widths))

    # Recreate the scheduling order to lay out serial slots per TAM.
    widest = max(widths)
    if time_of is not None:
        widest_time = time_of
    else:
        def widest_time(name: str, width: int) -> int:
            return config_of(name, width).test_time

    order = sorted(
        range(len(core_names)),
        key=lambda i: (
            -widest_time(core_names[i], widest),
            core_names[i],
        ),
    )
    loads = [0] * len(widths)
    scheduled: list[ScheduledCore] = []
    for index in order:
        name = core_names[index]
        tam = outcome.assignment[index]
        config = config_of(name, widths[tam])
        start = loads[tam]
        end = start + config.test_time
        loads[tam] = end
        scheduled.append(
            ScheduledCore(config=config, tam_index=tam, start=start, end=end)
        )

    arch = TestArchitecture(
        soc_name=soc_name,
        placement=placement,
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=ate_channels,
    )
    return arch
