"""Scan test-time and test-data-volume models for wrapped cores.

The standard modular-test timing model (paper refs [5]/[15]): with ``p``
patterns, longest scan-in chain ``si`` and longest scan-out chain ``so``,
and shift-in of pattern q+1 overlapped with shift-out of pattern q, the
core test time on its TAM is::

    tau = (1 + max(si, so)) * p + min(si, so)

clock cycles.  The ``1 +`` accounts for the capture cycle per pattern and
the trailing ``min(si, so)`` flushes the final response.
"""

from __future__ import annotations

from repro.soc.core import Core
from repro.wrapper.design import WrapperDesign, design_wrapper


def scan_test_time(patterns: int, scan_in_max: int, scan_out_max: int) -> int:
    """Core test time in clock cycles for the standard wrapper model."""
    if patterns < 1:
        raise ValueError(f"patterns must be >= 1, got {patterns}")
    longer = max(scan_in_max, scan_out_max)
    shorter = min(scan_in_max, scan_out_max)
    return (1 + longer) * patterns + shorter


def uncompressed_test_time(core: Core, tam_width: int) -> int:
    """Test time of ``core`` on a ``tam_width``-wide TAM without TDC.

    Without a decompressor every TAM wire drives one wrapper chain, so
    ``m = tam_width`` (surplus width beyond the core's useful chain count
    simply cannot reduce the time further).
    """
    design = design_wrapper(core, tam_width)
    return scan_test_time(core.patterns, design.scan_in_max, design.scan_out_max)


def uncompressed_tam_volume(core: Core, design: WrapperDesign) -> int:
    """Stimulus bits the ATE stores/streams for ``core`` without TDC.

    One bit per wrapper chain per shift cycle: ``p * max(si, so) * m``.
    This includes the idle (pad) bits needed to balance the wrapper
    chains, which is why it exceeds the raw cube volume
    ``core.test_data_volume``.
    """
    shift_cycles = max(design.scan_in_max, design.scan_out_max)
    return core.patterns * shift_cycles * design.num_chains
