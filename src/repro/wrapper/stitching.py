"""Flexible scan-chain re-stitching (extension).

The paper treats internal scan chains as fixed, indivisible segments --
the situation for hard (layout-frozen) cores.  For *soft* cores the
integrator may re-stitch the scan flip-flops into any number of chains
before wrapper design, which removes the chain-length floor under the
test time.  This module provides that knob and quantifies its value:

* :func:`restitch` rebuilds a core with a chosen chain count (balanced
  stitching, which is optimal for the scan-in depth);
* :func:`best_stitching` sweeps chain counts and returns the fastest
  configuration at a TAM width, with/without compression.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.soc.core import Core, balanced_chain_lengths


def restitch(core: Core, num_chains: int) -> Core:
    """Return a copy of ``core`` with its scan cells re-stitched.

    Balanced chains minimize the maximum chain length, which lower-
    bounds the wrapper scan-in depth.  The cube seed is preserved, so
    the synthetic test data stays statistically identical (the cube
    model is per-cell i.i.d.).
    """
    cells = core.scan_cells
    if cells == 0:
        raise ValueError(f"{core.name} has no scan cells to re-stitch")
    if not 1 <= num_chains <= cells:
        raise ValueError(
            f"chain count must be in [1, {cells}], got {num_chains}"
        )
    return replace(
        core,
        name=f"{core.name}@{num_chains}ch",
        scan_chain_lengths=balanced_chain_lengths(cells, num_chains),
    )


@dataclass(frozen=True)
class StitchingChoice:
    """Outcome of a stitching sweep at one TAM width."""

    original_time: int
    best_time: int
    best_chains: int
    core: Core

    @property
    def speedup(self) -> float:
        return self.original_time / self.best_time if self.best_time else 1.0


def best_stitching(
    core: Core,
    tam_width: int,
    *,
    compression: bool = True,
    max_chains: int | None = None,
) -> StitchingChoice:
    """Sweep chain counts and pick the fastest at ``tam_width``.

    Candidates are a geometric ladder up to ``max_chains`` (default:
    the scan-cell count capped at 1024).  Returns the original time,
    the best re-stitched time, and the winning core variant.
    """
    # Imported here: repro.explore depends on repro.wrapper, so a
    # module-level import would be circular.
    from repro.explore.dse import analysis_for

    if core.scan_cells == 0:
        raise ValueError(f"{core.name} has no scan cells to re-stitch")
    top = max_chains or min(core.scan_cells, 1024)
    top = min(top, core.scan_cells)

    def time_for(candidate: Core) -> int:
        analysis = analysis_for(candidate)
        return analysis.time_at_tam(tam_width, compression=compression)

    original_time = time_for(core)
    best_time = original_time
    best_core = core
    best_chains = core.num_scan_chains
    count = 1
    candidates = set()
    while count < top:
        candidates.add(count)
        count *= 2
    candidates.add(top)
    for num_chains in sorted(candidates):
        variant = restitch(core, num_chains)
        time = time_for(variant)
        if time < best_time:
            best_time = time
            best_core = variant
            best_chains = num_chains
    return StitchingChoice(
        original_time=original_time,
        best_time=best_time,
        best_chains=best_chains,
        core=best_core,
    )
