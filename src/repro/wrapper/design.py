"""Best-Fit-Decreasing wrapper-chain design.

Given a core and a number of wrapper chains ``m``, the wrapper design
problem places the core's scanned elements -- internal scan chains
(indivisible) plus the individual wrapper input/output cells -- onto the
``m`` chains so that the longest scan-in chain (``si``) and longest
scan-out chain (``so``) are minimized.  Minimizing ``max(si, so)``
minimizes the core test time ``(1 + max(si, so)) * p + min(si, so)``.

This is the ``Design_wrapper`` heuristic from Iyengar, Chakrabarty and
Marinissen (ITC 2001 / JETTA 2002), the paper's step 1:

1. sort internal scan chains by decreasing length and assign each to the
   wrapper chain with the currently shortest scan length (Best Fit
   Decreasing, min-max objective);
2. distribute wrapper input cells one at a time to the wrapper chain with
   the shortest scan-in length;
3. distribute wrapper output cells likewise against scan-out length.

Wrapper chains shorter than ``si``/``so`` are padded with idle cycles
during shifting; those pad positions are exactly the "idle bits" the
paper identifies as cause (i) of the non-monotonic compressed test time.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

import numpy as np

from repro import obs
from repro.soc.core import Core


@dataclass(frozen=True)
class WrapperDesign:
    """Result of wrapper-chain design for one core.

    Attributes
    ----------
    core:
        The core the design is for.
    chains_scan:
        Per wrapper chain, the tuple of internal scan-chain indices
        (into ``core.scan_chain_lengths``) assigned to it, in shift order.
    chains_inputs:
        Per wrapper chain, how many wrapper input cells it carries.
    chains_outputs:
        Per wrapper chain, how many wrapper output cells it carries.
    """

    core: Core
    chains_scan: tuple[tuple[int, ...], ...]
    chains_inputs: tuple[int, ...]
    chains_outputs: tuple[int, ...]

    @property
    def num_chains(self) -> int:
        return len(self.chains_scan)

    @cached_property
    def scan_in_lengths(self) -> tuple[int, ...]:
        """Scan-in length of every wrapper chain (input cells + scan FFs)."""
        lengths = self.core.scan_chain_lengths
        return tuple(
            self.chains_inputs[h] + sum(lengths[c] for c in self.chains_scan[h])
            for h in range(self.num_chains)
        )

    @cached_property
    def scan_out_lengths(self) -> tuple[int, ...]:
        """Scan-out length of every wrapper chain (scan FFs + output cells)."""
        lengths = self.core.scan_chain_lengths
        return tuple(
            sum(lengths[c] for c in self.chains_scan[h]) + self.chains_outputs[h]
            for h in range(self.num_chains)
        )

    @cached_property
    def scan_in_max(self) -> int:
        """``si``: the longest scan-in chain (0 for an unscanned design)."""
        return max(self.scan_in_lengths, default=0)

    @cached_property
    def scan_out_max(self) -> int:
        """``so``: the longest scan-out chain."""
        return max(self.scan_out_lengths, default=0)

    @property
    def used_chains(self) -> int:
        """Number of wrapper chains that actually carry elements."""
        return sum(
            1
            for si, so in zip(self.scan_in_lengths, self.scan_out_lengths)
            if si or so
        )

    def active_inputs_per_slice(self) -> np.ndarray:
        """How many wrapper chains carry a *real* stimulus bit per slice.

        With leading-pad alignment, a wrapper chain of scan-in length L
        receives real bits only during the last L of the ``si`` shift-in
        cycles.  Returns an int array of shape ``(si,)`` where entry ``j``
        is the number of chains with a real bit in shift cycle ``j``.  The
        remaining ``m - active`` positions of slice ``j`` are idle bits.

        Computed as a difference histogram: a chain of length L raises
        the count from slice ``si - L`` on, so one bincount over the
        chain lengths plus a cumulative sum replaces the former
        per-chain Python loop (O(si + m) instead of O(si * m)).
        """
        si = self.scan_in_max
        counts = np.zeros(si, dtype=np.int64)
        if si == 0:
            return counts
        lens = np.asarray(self.scan_in_lengths, dtype=np.int64)
        lens = lens[lens > 0]
        if lens.size == 0:
            return counts
        np.cumsum(np.bincount(si - lens, minlength=si)[:si], out=counts)
        return counts

    def scan_in_segments(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Contiguous stimulus-bit segments of the scan-in schedule.

        Every wrapper chain's scan-in sequence is a concatenation of
        contiguous runs of stimulus-bit indices (its wrapper input cells,
        then each assigned internal scan chain).  Returns four equal-length
        int64 arrays ``(bit_start, length, slice_start, chain)``: segment
        ``s`` covers stimulus bits ``bit_start[s] .. bit_start[s]+length[s]-1``,
        occupying slices ``slice_start[s] ..`` on wrapper chain
        ``chain[s]``.  This is the compact form of
        :meth:`scan_in_position_matrix` the vectorized kernels consume;
        only non-empty segments are returned.
        """
        core = self.core
        scan_starts = np.concatenate(
            ([0], np.cumsum(core.scan_chain_lengths))
        ).astype(np.int64)
        input_base = int(scan_starts[-1])  # input cells follow all scan cells
        si = self.scan_in_max
        in_lengths = self.scan_in_lengths
        bit_start: list[int] = []
        seg_len: list[int] = []
        slice_start: list[int] = []
        seg_chain: list[int] = []
        next_input_cell = 0
        for h in range(self.num_chains):
            cursor = si - in_lengths[h]
            inputs = self.chains_inputs[h]
            if inputs:
                bit_start.append(input_base + next_input_cell)
                seg_len.append(inputs)
                slice_start.append(cursor)
                seg_chain.append(h)
                next_input_cell += inputs
                cursor += inputs
            for chain_index in self.chains_scan[h]:
                length = core.scan_chain_lengths[chain_index]
                if not length:
                    continue
                bit_start.append(int(scan_starts[chain_index]))
                seg_len.append(length)
                slice_start.append(cursor)
                seg_chain.append(h)
                cursor += length
        return (
            np.asarray(bit_start, dtype=np.int64),
            np.asarray(seg_len, dtype=np.int64),
            np.asarray(slice_start, dtype=np.int64),
            np.asarray(seg_chain, dtype=np.int64),
        )

    def scan_in_position_matrix(self) -> np.ndarray:
        """Map (slice index, wrapper chain) -> stimulus-bit index, or -1.

        The stimulus bit vector of a pattern is ordered: all internal scan
        chain cells first (chain 0's cells in shift order, then chain
        1's, ...), followed by the wrapper input cells.  Within a wrapper
        chain the scan-in sequence is its input cells first, then its
        scan chains in assignment order.  Entry ``[j, h]`` is the stimulus
        bit shifted on wrapper chain ``h`` during cycle ``j`` (leading-pad
        alignment), or -1 for an idle-bit position.

        Built from :meth:`scan_in_segments` with one vectorized scatter
        instead of the former per-cell Python loop.
        """
        si = self.scan_in_max
        matrix = np.full((si, self.num_chains), -1, dtype=np.int64)
        bit_start, seg_len, slice_start, seg_chain = self.scan_in_segments()
        if seg_len.size == 0:
            return matrix
        offsets = np.arange(int(seg_len.sum()), dtype=np.int64)
        offsets -= np.repeat(np.cumsum(seg_len) - seg_len, seg_len)
        bits = np.repeat(bit_start, seg_len) + offsets
        slices = np.repeat(slice_start, seg_len) + offsets
        chains = np.repeat(seg_chain, seg_len)
        matrix[slices, chains] = bits
        return matrix


#: Upper bound on memoized wrapper designs.  Wrapper design is hot (the
#: DSE grid calls it thousands of times per core) but each entry pins a
#: ``Core`` reference via ``WrapperDesign.core``, so a long-lived service
#: analyzing an open-ended stream of designs must evict: least recently
#: used entries go first once the bound is hit.
WRAPPER_CACHE_MAX_ENTRIES = 65536

_WRAPPER_CACHE: OrderedDict[tuple[tuple, int], WrapperDesign] = OrderedDict()
_WRAPPER_CACHE_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}


def design_wrapper(core: Core, m: int) -> WrapperDesign:
    """Design a wrapper with ``m`` chains for ``core`` using BFD.

    ``m`` may exceed the number of useful chains; the surplus chains stay
    empty (their slice positions become idle bits, which matters for the
    compression analysis).

    Results are memoized in a bounded LRU keyed on the core's *value*
    fingerprint (:meth:`repro.soc.core.Core.cache_key`), so equal cores
    built independently -- e.g. the same design re-parsed from an ITC'02
    file -- share entries instead of growing the cache.
    """
    if m < 1:
        raise ValueError(f"wrapper chain count must be >= 1, got {m}")
    key = (core.cache_key(), m)
    design = _WRAPPER_CACHE.get(key)
    if design is not None:
        _WRAPPER_CACHE.move_to_end(key)
        _WRAPPER_CACHE_COUNTERS["hits"] += 1
        return design
    design = _design_wrapper_uncached(core, m)
    _WRAPPER_CACHE_COUNTERS["misses"] += 1
    obs.inc("wrapper.designs_computed")
    _WRAPPER_CACHE[key] = design
    while len(_WRAPPER_CACHE) > WRAPPER_CACHE_MAX_ENTRIES:
        _WRAPPER_CACHE.popitem(last=False)
        _WRAPPER_CACHE_COUNTERS["evictions"] += 1
    return design


def design_wrappers_batch(core: Core, ms: Iterable[int]) -> dict[int, WrapperDesign]:
    """Wrapper designs for many chain counts of one core in one pass.

    Bit-identical to calling :func:`design_wrapper` per ``m`` (the
    differential suite pins this), but the Best-Fit-Decreasing loop runs
    *across* all candidate chain counts at once: one ``(num_ms, max_m)``
    load matrix, one vectorized argmin per internal scan chain, instead
    of ``num_ms`` independent heap simulations.  Results are shared with
    (and served from) the :func:`design_wrapper` memo.
    """
    wanted = sorted({int(m) for m in ms})
    if not wanted:
        return {}
    if wanted[0] < 1:
        raise ValueError(f"wrapper chain count must be >= 1, got {wanted[0]}")
    out: dict[int, WrapperDesign] = {}
    core_key = core.cache_key()
    missing: list[int] = []
    for m in wanted:
        design = _WRAPPER_CACHE.get((core_key, m))
        if design is not None:
            _WRAPPER_CACHE.move_to_end((core_key, m))
            _WRAPPER_CACHE_COUNTERS["hits"] += 1
            out[m] = design
        else:
            missing.append(m)
    if not missing:
        return out

    with obs.span(
        "kernel.wrapper-batch", requested=len(wanted), missing=len(missing)
    ):
        _design_wrappers_missing(core, core_key, missing, out)
    return out


def _design_wrappers_missing(
    core: Core,
    core_key: tuple,
    missing: list[int],
    out: dict[int, WrapperDesign],
) -> None:
    lengths = core.scan_chain_lengths
    order = sorted(range(len(lengths)), key=lambda i: lengths[i], reverse=True)
    num_ms = len(missing)
    m_max = missing[-1]
    # Chain counts beyond each candidate's m are fenced with a sentinel
    # load so argmin never assigns to them.  The heap variant resolves
    # load ties to the lowest chain id; np.argmin picks the first
    # minimum, which is the same tie-break.
    sentinel = np.int64(1) << 62
    loads = np.zeros((num_ms, m_max), dtype=np.int64)
    for i, m in enumerate(missing):
        loads[i, m:] = sentinel
    picks = np.empty((len(order), num_ms), dtype=np.int64)
    rows = np.arange(num_ms)
    for t, chain_index in enumerate(order):
        h = np.argmin(loads, axis=1)
        picks[t] = h
        loads[rows, h] += lengths[chain_index]

    picks_list = picks.tolist()
    for i, m in enumerate(missing):
        assignment: list[list[int]] = [[] for _ in range(m)]
        for t, chain_index in enumerate(order):
            assignment[picks_list[t][i]].append(chain_index)
        scan_load = loads[i, :m].tolist()
        chain_order = sorted(range(m), key=lambda h: (scan_load[h], h))
        inputs = _distribute_cells(
            scan_load, m, core.wrapper_input_cells, order=chain_order
        )
        outputs = _distribute_cells(
            scan_load, m, core.wrapper_output_cells, order=chain_order
        )
        design = WrapperDesign(
            core=core,
            chains_scan=tuple(tuple(chains) for chains in assignment),
            chains_inputs=tuple(inputs),
            chains_outputs=tuple(outputs),
        )
        _WRAPPER_CACHE_COUNTERS["misses"] += 1
        obs.inc("wrapper.designs_computed")
        _WRAPPER_CACHE[(core_key, m)] = design
        out[m] = design
    while len(_WRAPPER_CACHE) > WRAPPER_CACHE_MAX_ENTRIES:
        _WRAPPER_CACHE.popitem(last=False)
        _WRAPPER_CACHE_COUNTERS["evictions"] += 1


def wrapper_cache_info() -> dict[str, int]:
    """Size and traffic counters of the wrapper-design memo."""
    return {
        "entries": len(_WRAPPER_CACHE),
        "max_entries": WRAPPER_CACHE_MAX_ENTRIES,
        **_WRAPPER_CACHE_COUNTERS,
    }


def clear_wrapper_design_cache() -> None:
    """Drop every memoized wrapper design and reset the counters."""
    _WRAPPER_CACHE.clear()
    for key in _WRAPPER_CACHE_COUNTERS:
        _WRAPPER_CACHE_COUNTERS[key] = 0


def _design_wrapper_uncached(core: Core, m: int) -> WrapperDesign:
    lengths = core.scan_chain_lengths
    order = sorted(range(len(lengths)), key=lambda i: lengths[i], reverse=True)

    # Step 1: BFD of internal scan chains against scan length.  The heap
    # holds (current scan length, chain id); ties resolve to the lowest
    # chain id, which keeps the design deterministic.
    heap: list[tuple[int, int]] = [(0, h) for h in range(m)]
    heapq.heapify(heap)
    assignment: list[list[int]] = [[] for _ in range(m)]
    scan_load = [0] * m
    for chain_index in order:
        load, h = heapq.heappop(heap)
        assignment[h].append(chain_index)
        scan_load[h] = load + lengths[chain_index]
        heapq.heappush(heap, (scan_load[h], h))

    inputs = _distribute_cells(scan_load, m, core.wrapper_input_cells)
    outputs = _distribute_cells(scan_load, m, core.wrapper_output_cells)

    return WrapperDesign(
        core=core,
        chains_scan=tuple(tuple(chains) for chains in assignment),
        chains_inputs=tuple(inputs),
        chains_outputs=tuple(outputs),
    )


def _distribute_cells(
    scan_load: list[int], m: int, cells: int, *, order: list[int] | None = None
) -> list[int]:
    """Spread ``cells`` wrapper cells over chains, shortest-first.

    Equivalent to adding the cells one at a time to the currently
    shortest chain, but computed in O(m log m + m) by water-filling.
    ``order`` optionally passes the chains pre-sorted by ``(load, id)``
    so callers distributing against the same loads twice (input and
    output cells) share one sort.
    """
    if cells <= 0:
        return [0] * m
    counts = [0] * m
    if order is None:
        order = sorted(range(m), key=lambda h: (scan_load[h], h))
    loads = [scan_load[h] for h in order]
    remaining = cells
    # Water-fill: raise the lowest levels together until cells run out.
    level_index = 0
    while remaining > 0 and level_index < m - 1:
        width = level_index + 1
        gap = loads[level_index + 1] - loads[level_index]
        if gap == 0:
            level_index += 1
            continue
        take = min(remaining, gap * width)
        per_chain, extra = divmod(take, width)
        for pos in range(width):
            add = per_chain + (1 if pos < extra else 0)
            counts[order[pos]] += add
            loads[pos] += add
        remaining -= take
        if loads[level_index] >= loads[level_index + 1]:
            level_index += 1
    if remaining > 0:
        per_chain, extra = divmod(remaining, m)
        for pos in range(m):
            counts[order[pos]] += per_chain + (1 if pos < extra else 0)
    return counts


def pareto_wrapper_designs(core: Core, max_chains: int) -> dict[int, WrapperDesign]:
    """Wrapper designs for every chain count 1..max_chains.

    Returns a dict ``m -> WrapperDesign``.  Callers typically keep only
    the Pareto-optimal entries (test time strictly improves), but the
    full sweep is what the paper's decompressor analysis needs: the
    compressed test time is *not* monotone in ``m``.
    """
    if max_chains < 1:
        raise ValueError(f"max_chains must be >= 1, got {max_chains}")
    designs = design_wrappers_batch(core, range(1, max_chains + 1))
    return {m: designs[m] for m in range(1, max_chains + 1)}
