"""Test-wrapper design for embedded cores (IEEE 1500 style).

Implements the Best-Fit-Decreasing wrapper-chain design heuristic of
Iyengar, Chakrabarty and Marinissen (the paper's refs [5]/[15]) and the
associated scan test-time model.
"""

from repro.wrapper.design import WrapperDesign, design_wrapper, pareto_wrapper_designs
from repro.wrapper.timing import (
    scan_test_time,
    uncompressed_test_time,
    uncompressed_tam_volume,
)
from repro.wrapper.stitching import StitchingChoice, best_stitching, restitch

__all__ = [
    "StitchingChoice",
    "best_stitching",
    "restitch",
    "WrapperDesign",
    "design_wrapper",
    "pareto_wrapper_designs",
    "scan_test_time",
    "uncompressed_test_time",
    "uncompressed_tam_volume",
]
