"""Process-level parallelism helpers for the analysis engine.

The per-core design-space analyses (``repro.explore.dse``) are
embarrassingly parallel: every core's lookup table depends only on that
core's parameters, never on its SOC siblings.  :func:`parallel_map` fans
such work out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and degrades gracefully to a serial loop when only one job is requested,
when there is only one item, or when the platform refuses to spawn
worker processes (restricted sandboxes).

Job-count resolution (:func:`resolve_jobs`)::

    explicit ``jobs=`` argument  >  REPRO_JOBS env var  >  1 (serial)

``jobs=0`` (or any non-positive value) means "one worker per CPU".
Serial execution is the default on purpose: results are bit-identical
either way (every worker is deterministic in its inputs), but spawning
processes costs real time for small workloads, so parallelism is an
explicit opt-in.

Every degradation path raises a :class:`RuntimeWarning` (so callers
can ``filterwarnings`` on it) *and* emits a structured log record
through :mod:`repro.obs.logging` (so a long-lived service's JSON log
captures the event with its request correlation id).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs.logging import get_logger

ENV_JOBS = "REPRO_JOBS"

_LOG = get_logger("repro.parallel")

#: Ceiling on any worker count this module will resolve.  A request
#: beyond it is always a mistake (a typo'd ``REPRO_JOBS=1000000`` would
#: otherwise try to spawn a million interpreters), so it degrades to
#: serial with a warning rather than taking the machine down.
MAX_JOBS = 512

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: int | None = None) -> int:
    """Turn a ``jobs=`` knob into a concrete worker count (>= 1).

    Malformed ``REPRO_JOBS`` values never raise: the environment is a
    convenience channel, and a typo there must not kill a run that
    would have succeeded serially.  Non-integer text (including floats
    like ``"2.5"``) and values beyond :data:`MAX_JOBS` fall back to
    serial with a :class:`RuntimeWarning`; pure whitespace is treated
    as unset.  An explicit ``jobs=`` argument gets the same
    :data:`MAX_JOBS` guard.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {ENV_JOBS}={raw!r}; running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            _LOG.warning("jobs-env-ignored", value=raw, fallback=1)
            return 1
    if jobs > MAX_JOBS:
        warnings.warn(
            f"ignoring implausible worker count {jobs} (max {MAX_JOBS}); "
            "running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        _LOG.warning(
            "jobs-implausible", requested=int(jobs), max=MAX_JOBS, fallback=1
        )
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    jobs: int | None = None,
) -> list[_R]:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    ``fn`` and every item must be picklable when more than one job is
    requested.  Ordering is preserved.  Exceptions raised by ``fn``
    propagate to the caller; failures to *start* the pool (platforms
    without working multiprocessing) fall back to the serial path with a
    warning instead of failing the run.
    """
    work: Sequence[_T] = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, work))
    except (OSError, PermissionError, BrokenProcessPool) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        _LOG.warning(
            "pool-unavailable",
            error=repr(exc),
            workers=workers,
            items=len(work),
        )
        return [fn(item) for item in work]
