"""Per-core compression-technique selection (extension).

The authors' follow-up paper ("Core-Level Compression Technique
Selection and SOC Test Architecture Design", ATS 2008 -- the first
entry in this paper's related-work trail) observes that no single
compression scheme wins for every core: the best choice depends on the
core's care-bit statistics and the TAM width it is granted.  This
module implements that selection step over the three techniques this
repository provides:

* ``none`` -- wrapper straight on the TAM;
* ``selective`` -- the paper's selective-encoding decompressor;
* ``dictionary`` -- fixed-length-index dictionary decompression
  (exact-analysis cores only: building a dictionary needs the actual
  cubes, so estimator-mode industrial cores fall back to the first two).

The selected configuration plugs into the SOC optimizer via
``optimize_soc(..., compression="select")``.

Dictionary statistics (hit rates, compressed bits) depend only on the
slice width ``m`` and the index width -- not on the TAM width, which
only scales the delivery cycles -- so :class:`TechniqueSelector` builds
each dictionary once per core and answers every TAM-width query from
that cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.dictionary import (
    DictionaryStats,
    build_dictionary,
    compression_stats,
    delivery_cycles,
)
from repro.explore.dse import CoreAnalysis
from repro.wrapper.design import design_wrapper

#: Dictionary index widths tried per core.
DEFAULT_INDEX_BITS = (4, 8)


@dataclass(frozen=True)
class TechniqueChoice:
    """Winning technique for one core at one TAM width."""

    core_name: str
    tam_width: int
    technique: str  # "none" | "selective" | "dictionary"
    test_time: int
    volume: int
    wrapper_chains: int
    code_width: int | None
    index_bits: int | None = None
    hit_rate: float | None = None


class TechniqueSelector:
    """Technique selection for one core, with cached dictionary builds."""

    def __init__(
        self,
        analysis: CoreAnalysis,
        *,
        index_bits_options: tuple[int, ...] = DEFAULT_INDEX_BITS,
    ) -> None:
        self.analysis = analysis
        self.index_bits_options = index_bits_options
        # (m, index_bits) -> (stats, si, so); built lazily, once per key.
        self._stats: dict[tuple[int, int], tuple[DictionaryStats, int, int]] = {}
        self._choices: dict[int, TechniqueChoice] = {}

    # ------------------------------------------------------------------

    def _slice_width_ladder(self) -> list[int]:
        """Wrapper-chain counts worth building dictionaries for."""
        top = self.analysis.core.max_useful_wrapper_chains
        ladder = []
        m = 4
        while m < top:
            ladder.append(m)
            m *= 2
        ladder.append(top)
        return sorted(set(ladder))

    def _stats_for(self, m: int, index_bits: int):
        key = (m, index_bits)
        cached = self._stats.get(key)
        if cached is None:
            core = self.analysis.core
            design = design_wrapper(core, m)
            slices = self.analysis.cubes.slices(design).reshape(-1, m)
            if 2**index_bits > slices.shape[0]:
                cached = (None, 0, 0)  # dictionary bigger than the stream
            else:
                dictionary = build_dictionary(slices, index_bits)
                stats = compression_stats(slices, dictionary)
                cached = (stats, design.scan_in_max, design.scan_out_max)
            self._stats[key] = cached
        return cached

    def dictionary_choice(self, tam_width: int) -> TechniqueChoice | None:
        """Best dictionary configuration, or ``None`` when unavailable."""
        if self.analysis.mode != "exact":
            return None
        core = self.analysis.core
        best: TechniqueChoice | None = None
        for m in self._slice_width_ladder():
            for index_bits in self.index_bits_options:
                stats, si, so = self._stats_for(m, index_bits)
                if stats is None:
                    continue
                cycles = delivery_cycles(stats, tam_width)
                time = cycles + core.patterns + min(si, so)
                if best is None or time < best.test_time:
                    best = TechniqueChoice(
                        core_name=core.name,
                        tam_width=tam_width,
                        technique="dictionary",
                        test_time=time,
                        volume=stats.compressed_bits,
                        wrapper_chains=m,
                        code_width=tam_width,
                        index_bits=index_bits,
                        hit_rate=stats.hit_rate,
                    )
        return best

    # ------------------------------------------------------------------

    def select(self, tam_width: int) -> TechniqueChoice:
        """Pick the fastest of {none, selective, dictionary}."""
        cached = self._choices.get(tam_width)
        if cached is not None:
            return cached
        core = self.analysis.core
        plain = self.analysis.uncompressed_point(tam_width)
        candidates = [
            TechniqueChoice(
                core_name=core.name,
                tam_width=tam_width,
                technique="none",
                test_time=plain.test_time,
                volume=plain.volume,
                wrapper_chains=min(tam_width, core.max_useful_wrapper_chains),
                code_width=None,
            )
        ]
        selective = self.analysis.best_compressed_for_tam(tam_width)
        if selective is not None:
            candidates.append(
                TechniqueChoice(
                    core_name=core.name,
                    tam_width=tam_width,
                    technique="selective",
                    test_time=selective.test_time,
                    volume=selective.volume,
                    wrapper_chains=selective.m,
                    code_width=selective.code_width,
                )
            )
        dictionary = self.dictionary_choice(tam_width)
        if dictionary is not None:
            candidates.append(dictionary)
        choice = min(candidates, key=lambda c: (c.test_time, c.volume))
        self._choices[tam_width] = choice
        return choice


def select_technique(
    analysis: CoreAnalysis,
    tam_width: int,
    *,
    index_bits_options: tuple[int, ...] = DEFAULT_INDEX_BITS,
) -> TechniqueChoice:
    """One-shot selection (convenience over :class:`TechniqueSelector`)."""
    selector = TechniqueSelector(analysis, index_bits_options=index_bits_options)
    return selector.select(tam_width)
