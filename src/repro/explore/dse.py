"""Design-space exploration of per-core decompressor configurations.

:class:`CoreAnalysis` answers, for one core, the questions the SOC-level
optimizer asks (the paper's steps 1-2):

* ``uncompressed_point(w)`` -- wrapper design and test time on a
  ``w``-wide TAM without TDC;
* ``compressed_point(m)`` -- decompressor with ``m`` wrapper chains (the
  code width ``w`` follows from ``m``), its codeword count, test time and
  compressed volume;
* ``sweep_code_width(w)`` / ``best_for_code_width(w)`` -- all / the best
  ``m`` whose code width is exactly ``w`` (Figures 2 and 3);
* ``best_compressed_for_tam(W)`` -- the best configuration whose code
  width fits a ``W``-wide TAM (what scheduling uses; monotone in ``W``
  by construction even though ``tau_c`` itself is non-monotonic).

Small cores (d695/d2758 class) are analyzed *exactly*: their synthetic
cubes are materialized and run through the bit-accurate slice-cost
kernel.  Industrial-scale cores use the sampled estimator
(:mod:`repro.compression.estimator`); the two paths share the same cost
model and are cross-validated in the test suite.

Compressed test-time model (DESIGN.md section 3)::

    tau_c = total codewords + p + min(si, so)

one ATE cycle per codeword, one capture cycle per pattern, and a final
response flush.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Iterable, Literal

import numpy as np

from repro import obs
from repro.compression.cubes import TestCubeSet, generate_cubes
from repro.compression.estimator import (
    DEFAULT_SAMPLES,
    estimate_codewords,
    estimate_codewords_batch,
)
from repro.compression.hotpath import exact_codeword_totals, symbol_table
from repro.compression.selective import code_parameters, slice_costs, slice_width_range
from repro.explore.cache import AnalysisDiskCache, analysis_fingerprint
from repro.flags import use_scalar_kernels
from repro.parallel import parallel_map, resolve_jobs
from repro.soc.core import Core
from repro.wrapper.design import design_wrapper, design_wrappers_batch
from repro.wrapper.timing import scan_test_time, uncompressed_tam_volume

Mode = Literal["auto", "exact", "estimate"]


class SnapshotError(ValueError):
    """A serialized analysis table is malformed or mismatched."""

#: Cores with at most this many cube cells are analyzed exactly.
EXACT_CELL_LIMIT = 4_000_000

#: Smallest meaningful code width (w = 3 covers m = 1).
MIN_CODE_WIDTH = 3

#: At most this many m values are evaluated per code width.
DEFAULT_GRID = 48




@dataclass(frozen=True)
class UncompressedPoint:
    """Wrapper design outcome on a ``w``-wide TAM without TDC."""

    tam_width: int
    scan_in_max: int
    scan_out_max: int
    test_time: int
    volume: int


@dataclass(frozen=True)
class CompressedPoint:
    """Decompressor configuration outcome for one core."""

    m: int
    code_width: int
    scan_in_max: int
    scan_out_max: int
    codewords: int
    test_time: int
    volume: int
    exact: bool

    @property
    def w(self) -> int:
        """Alias matching the paper's notation for the TAM-side width."""
        return self.code_width


class CoreAnalysis:
    """Per-core (w, m) design-space exploration with caching."""

    def __init__(
        self,
        core: Core,
        *,
        mode: Mode = "auto",
        samples: int = DEFAULT_SAMPLES,
        grid: int = DEFAULT_GRID,
        cubes: TestCubeSet | None = None,
    ) -> None:
        if mode not in ("auto", "exact", "estimate"):
            raise ValueError(f"unknown mode {mode!r}")
        if grid < 2:
            raise ValueError(f"grid must be >= 2, got {grid}")
        self.core = core
        self.samples = samples
        self.grid = grid
        if cubes is not None:
            # Externally supplied (e.g. real ATPG) cubes force the
            # exact path: the estimator only knows the synthetic model.
            if cubes.core != core:
                raise ValueError("cube set belongs to a different core")
            if mode == "estimate":
                raise ValueError("cannot combine external cubes with estimate mode")
            mode = "exact"
        elif mode == "auto":
            cells = core.patterns * core.scan_in_bits
            mode = "exact" if cells <= EXACT_CELL_LIMIT else "estimate"
        self.mode: str = mode
        self._cubes: TestCubeSet | None = cubes
        self._external_cubes = cubes is not None
        self._uncompressed: dict[int, UncompressedPoint] = {}
        self._compressed: dict[int, CompressedPoint] = {}
        self._best_by_width: dict[int, CompressedPoint | None] = {}
        self._precomputed_width = 0
        self._symbols: np.ndarray | None = None  # hotpath symbol table

    # ------------------------------------------------------------------

    @property
    def cubes(self) -> TestCubeSet:
        """Materialized cube set (exact mode only)."""
        if self.mode != "exact":
            raise RuntimeError(
                f"{self.core.name} is analyzed in estimate mode; "
                "cubes are not materialized"
            )
        if self._cubes is None:
            self._cubes = generate_cubes(self.core)
        return self._cubes

    #: How many code widths beyond the core's useful range are explored.
    #: A decompressor may be built wider than the core can exploit (its
    #: surplus outputs idle); the paper's Figure 3 evaluates such widths
    #: and finds them non-improving.
    EXTRA_CODE_WIDTHS = 3

    @property
    def max_code_width(self) -> int:
        """Largest code width the exploration considers."""
        m = self.core.max_useful_wrapper_chains
        _, w = code_parameters(m)
        return w + self.EXTRA_CODE_WIDTHS

    # ------------------------------------------------------------------
    # Uncompressed side (paper step 1)
    # ------------------------------------------------------------------

    def uncompressed_point(self, tam_width: int) -> UncompressedPoint:
        """Test time/volume on a plain ``tam_width``-wide TAM."""
        if tam_width < 1:
            raise ValueError(f"TAM width must be >= 1, got {tam_width}")
        point = self._uncompressed.get(tam_width)
        if point is None:
            design = design_wrapper(self.core, tam_width)
            time = scan_test_time(
                self.core.patterns, design.scan_in_max, design.scan_out_max
            )
            point = UncompressedPoint(
                tam_width=tam_width,
                scan_in_max=design.scan_in_max,
                scan_out_max=design.scan_out_max,
                test_time=time,
                volume=uncompressed_tam_volume(self.core, design),
            )
            self._uncompressed[tam_width] = point
        return point

    # ------------------------------------------------------------------
    # Compressed side (paper step 2)
    # ------------------------------------------------------------------

    def compressed_point(self, m: int) -> CompressedPoint:
        """Decompressor outcome for exactly ``m`` wrapper chains."""
        if m < 1:
            raise ValueError(f"wrapper chain count must be >= 1, got {m}")
        point = self._compressed.get(m)
        if point is not None:
            return point
        self._ensure_points([m])
        return self._compressed[m]

    def _ensure_points(self, m_values: Iterable[int]) -> None:
        """Evaluate every missing ``m`` in one batched kernel pass.

        The fast path batches the wrapper BFD across all chain counts
        and runs the fused codeword kernels
        (:mod:`repro.compression.hotpath` /
        :func:`~repro.compression.estimator.estimate_codewords_batch`)
        over all missing designs at once.  Under
        ``REPRO_SCALAR_KERNELS`` each design instead goes through the
        retained reference path one by one; both fill the same memo with
        bit-identical points.
        """
        missing = sorted(
            {int(m) for m in m_values if int(m) not in self._compressed}
        )
        for m in missing:
            if m < 1:
                raise ValueError(f"wrapper chain count must be >= 1, got {m}")
        if not missing:
            return
        if use_scalar_kernels():
            for m in missing:
                self._compressed[m] = self._scalar_point(m)
            return
        designs_by_m = design_wrappers_batch(self.core, missing)
        designs = [designs_by_m[m] for m in missing]
        if self.mode == "exact":
            if self._symbols is None:
                self._symbols = symbol_table(self.cubes)
            totals = exact_codeword_totals(
                self.cubes, designs, symbols=self._symbols
            )
            codeword_counts = [int(total) for total in totals]
            exact = True
        else:
            stats = estimate_codewords_batch(
                self.core, designs, samples=self.samples
            )
            codeword_counts = [stat.total_codewords for stat in stats]
            exact = False
        for m, design, codewords in zip(missing, designs, codeword_counts):
            self._compressed[m] = self._build_point(
                m, design.scan_in_max, design.scan_out_max, codewords, exact
            )

    def _scalar_point(self, m: int) -> CompressedPoint:
        """Reference evaluation of one ``m`` (the pre-vectorization path)."""
        design = design_wrapper(self.core, m)
        if self.mode == "exact":
            slices = self.cubes.slices(design)
            codewords = int(slice_costs(slices).sum())
            exact = True
        else:
            codewords = estimate_codewords(
                self.core, design, samples=self.samples
            ).total_codewords
            exact = False
        return self._build_point(
            m, design.scan_in_max, design.scan_out_max, codewords, exact
        )

    def _build_point(
        self, m: int, si: int, so: int, codewords: int, exact: bool
    ) -> CompressedPoint:
        _, w = code_parameters(m)
        time = codewords + self.core.patterns + min(si, so)
        return CompressedPoint(
            m=m,
            code_width=w,
            scan_in_max=si,
            scan_out_max=so,
            codewords=codewords,
            test_time=time,
            volume=codewords * w,
            exact=exact,
        )

    def m_grid_for_code_width(self, w: int) -> list[int]:
        """Slice widths evaluated for code width ``w`` (grid-limited).

        All of ``slice_width_range(w)`` when small; otherwise an evenly
        spaced subset that always includes both endpoints and -- when it
        falls in range -- the core's scan-chain count (the structurally
        interesting point where every scan chain gets its own wrapper
        chain).
        """
        if w > self.max_code_width:
            return []
        full = slice_width_range(w)
        rng = slice_width_range(w, self.core.max_useful_wrapper_chains)
        values = list(rng)
        if not values:
            # The whole range lies beyond the useful chain count: the
            # decompressor can still be built (surplus outputs idle); the
            # narrowest such slice width dilutes the groups least.
            return [full.start]
        if len(values) <= self.grid:
            return values
        picks = np.unique(
            np.linspace(values[0], values[-1], self.grid).round().astype(int)
        )
        chosen = set(int(v) for v in picks)
        chains = self.core.num_scan_chains
        if values[0] <= chains <= values[-1]:
            chosen.add(chains)
        return sorted(chosen)

    def sweep_code_width(self, w: int) -> list[CompressedPoint]:
        """All evaluated configurations with code width exactly ``w``."""
        grid = self.m_grid_for_code_width(w)
        self._ensure_points(grid)
        return [self.compressed_point(m) for m in grid]

    def sweep_wrapper_chains(self, m_values: list[int] | range) -> list[CompressedPoint]:
        """Evaluate explicit wrapper-chain counts (Figure 2 style)."""
        self._ensure_points(m_values)
        return [self.compressed_point(m) for m in m_values]

    def best_for_code_width(self, w: int) -> CompressedPoint | None:
        """Fastest configuration whose code width is exactly ``w``.

        This is one point of the paper's Figure 3.  Returns ``None`` when
        no useful slice width maps to ``w`` for this core.
        """
        if w in self._best_by_width:
            return self._best_by_width[w]
        points = self.sweep_code_width(w)
        best = min(points, key=lambda p: (p.test_time, p.m), default=None)
        self._best_by_width[w] = best
        return best

    def best_compressed_for_tam(self, tam_width: int) -> CompressedPoint | None:
        """Fastest configuration whose code width fits ``tam_width`` wires.

        Unlike :meth:`best_for_code_width` this is monotone non-improving
        as ``tam_width`` shrinks, because narrower codes remain feasible
        on wider TAMs (surplus wires idle).
        """
        best: CompressedPoint | None = None
        top = min(tam_width, self.max_code_width)
        widths = range(MIN_CODE_WIDTH, top + 1)
        # Batch every uncached width's grid through one kernel pass
        # before the per-width bookkeeping below hits the memo.
        self._ensure_points(
            m
            for w in widths
            if w not in self._best_by_width
            for m in self.m_grid_for_code_width(w)
        )
        for w in widths:
            candidate = self.best_for_code_width(w)
            if candidate is None:
                continue
            if best is None or candidate.test_time < best.test_time:
                best = candidate
        return best

    # ------------------------------------------------------------------
    # Scheduling-facing summary
    # ------------------------------------------------------------------

    def time_at_tam(self, tam_width: int, *, compression: bool) -> int:
        """Core test time on a ``tam_width``-wide TAM.

        With ``compression=True`` and no feasible code (TAM narrower than
        3 wires, say), falls back to the uncompressed time -- the wrapper
        is simply connected straight to the TAM.
        """
        if not compression:
            return self.uncompressed_point(tam_width).test_time
        best = self.best_compressed_for_tam(tam_width)
        if best is None:
            return self.uncompressed_point(tam_width).test_time
        return best.test_time

    def volume_at_tam(self, tam_width: int, *, compression: bool) -> int:
        """Stimulus volume matching :meth:`time_at_tam`'s choice."""
        if not compression:
            return self.uncompressed_point(tam_width).volume
        best = self.best_compressed_for_tam(tam_width)
        if best is None:
            return self.uncompressed_point(tam_width).volume
        return best.volume

    def relative_spread(self, w: int) -> float:
        """``(tau_max - tau_min) / tau_max`` over code width ``w``'s sweep.

        The quantity the paper annotates in Figure 2 (31% for ckt-7 at
        w = 10).
        """
        points = self.sweep_code_width(w)
        if not points:
            raise ValueError(f"no feasible slice widths for code width {w}")
        times = [p.test_time for p in points]
        hi, lo = max(times), min(times)
        return (hi - lo) / hi if hi else 0.0

    # ------------------------------------------------------------------
    # Persistence: precompute / snapshot / restore
    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str | None:
        """Content address for the persistent cache, or ``None``.

        Analyses over externally supplied cube sets are keyed by object
        identity and cannot be content-addressed; they never hit disk.
        """
        if self._external_cubes:
            return None
        return analysis_fingerprint(
            self.core, mode=self.mode, samples=self.samples, grid=self.grid
        )

    def is_complete_for(self, max_tam_width: int) -> bool:
        """Whether every lookup up to ``max_tam_width`` is already cached."""
        return self._precomputed_width >= max_tam_width

    def precompute(self, max_tam_width: int) -> None:
        """Eagerly evaluate every lookup the optimizer can ask for.

        Covers the uncompressed point of every TAM width up to the
        budget and the best-``m`` sweep of every feasible code width --
        exactly the queries :meth:`time_at_tam` and the scheduler issue.
        Idempotent, and a no-op for widths already covered.
        """
        if max_tam_width < 1:
            raise ValueError(f"TAM width must be >= 1, got {max_tam_width}")
        if self.is_complete_for(max_tam_width):
            return
        if not use_scalar_kernels():
            # One batched BFD pass warms the wrapper cache for every
            # width the loops below will ask for.
            design_wrappers_batch(self.core, range(1, max_tam_width + 1))
        for w in range(1, max_tam_width + 1):
            self.uncompressed_point(w)
        top = min(max_tam_width, self.max_code_width)
        for w in range(MIN_CODE_WIDTH, top + 1):
            self.best_for_code_width(w)
        self._precomputed_width = max(self._precomputed_width, max_tam_width)

    def snapshot(self) -> dict:
        """JSON-serializable dump of every evaluated lookup entry."""
        return {
            "core": self.core.name,
            "mode": self.mode,
            "grid": self.grid,
            "samples": self.samples,
            "precomputed_width": self._precomputed_width,
            "uncompressed": {
                str(w): [p.scan_in_max, p.scan_out_max, p.test_time, p.volume]
                for w, p in self._uncompressed.items()
            },
            "compressed": {
                str(m): [
                    p.code_width,
                    p.scan_in_max,
                    p.scan_out_max,
                    p.codewords,
                    p.test_time,
                    p.volume,
                    int(p.exact),
                ]
                for m, p in self._compressed.items()
            },
            "best_by_width": {
                str(w): (None if p is None else p.m)
                for w, p in self._best_by_width.items()
            },
        }

    def load_snapshot(self, payload: dict) -> None:
        """Merge a :meth:`snapshot` payload into the in-memory tables.

        Entries already evaluated locally win (they are equal anyway for
        a matching payload -- the analysis is deterministic).  Raises
        :class:`SnapshotError` on any structural defect; the caller
        treats that as a cache miss and recomputes.
        """
        try:
            if payload["core"] != self.core.name or payload["mode"] != self.mode:
                raise SnapshotError("snapshot is for a different analysis")
            if payload["grid"] != self.grid:
                raise SnapshotError("snapshot grid mismatch")
            if self.mode == "estimate" and payload["samples"] != self.samples:
                raise SnapshotError("snapshot sample-count mismatch")
            uncompressed = {}
            for key, row in payload["uncompressed"].items():
                si, so, time, volume = (int(v) for v in row)
                uncompressed[int(key)] = UncompressedPoint(
                    tam_width=int(key),
                    scan_in_max=si,
                    scan_out_max=so,
                    test_time=time,
                    volume=volume,
                )
            compressed = {}
            for key, row in payload["compressed"].items():
                code_width, si, so, codewords, time, volume, exact = (
                    int(v) for v in row
                )
                compressed[int(key)] = CompressedPoint(
                    m=int(key),
                    code_width=code_width,
                    scan_in_max=si,
                    scan_out_max=so,
                    codewords=codewords,
                    test_time=time,
                    volume=volume,
                    exact=bool(exact),
                )
            best_by_width: dict[int, CompressedPoint | None] = {}
            for key, m in payload["best_by_width"].items():
                if m is None:
                    best_by_width[int(key)] = None
                else:
                    best_by_width[int(key)] = compressed[int(m)]
            width = int(payload["precomputed_width"])
        except SnapshotError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed analysis snapshot: {exc}") from exc
        for w, upoint in uncompressed.items():
            self._uncompressed.setdefault(w, upoint)
        for m, cpoint in compressed.items():
            self._compressed.setdefault(m, cpoint)
        for w, best in best_by_width.items():
            if w not in self._best_by_width:
                self._best_by_width[w] = best
        self._precomputed_width = max(self._precomputed_width, width)


# ---------------------------------------------------------------------------
# Parallel fan-out: one worker task per core.
# ---------------------------------------------------------------------------


def _precompute_observed(analysis: CoreAnalysis, max_tam_width: int) -> None:
    """Precompute one core's table under a per-core span + latency metric."""
    began = time.perf_counter()
    with obs.span(
        f"analyze:{analysis.core.name}",
        core=analysis.core.name,
        mode=analysis.mode,
        max_tam_width=max_tam_width,
    ):
        analysis.precompute(max_tam_width)
    obs.observe("analysis.core_seconds", time.perf_counter() - began)
    obs.inc("analysis.cores_computed")


def _snapshot_worker(
    task: tuple[Core, str, int, int, int, dict | None, bool],
) -> tuple[str, dict, dict[str, Any] | None]:
    """Compute one core's full lookup table; runs in a worker process.

    The optional seed payload carries entries already known to the
    parent (from the disk cache at a smaller width budget), so the
    worker only evaluates the genuinely missing region.

    When the parent runs under an enabled observability context it sets
    ``record_obs``; the worker then records its spans and metrics into a
    *fresh, task-scoped* context -- never the one a forked child may
    have inherited, which already holds the parent's history -- and
    ships the portable payload back for the parent to merge.
    """
    core, mode, samples, grid, max_tam_width, seed_payload, record_obs = task
    analysis = CoreAnalysis(core, mode=mode, samples=samples, grid=grid)
    if seed_payload is not None:
        try:
            analysis.load_snapshot(seed_payload)
        except SnapshotError:
            pass
    if not record_obs:
        analysis.precompute(max_tam_width)
        return core.name, analysis.snapshot(), None
    with obs.enabled() as local:
        _precompute_observed(analysis, max_tam_width)
        payload = {
            "spans": local.tracer.snapshot(),
            "metrics": local.registry.snapshot(),
        }
    return core.name, analysis.snapshot(), payload


def analyze_soc_cores(
    cores: Iterable[Core],
    *,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    max_tam_width: int | None = None,
    jobs: int | None = None,
    cache: AnalysisDiskCache | None = None,
) -> dict[str, CoreAnalysis]:
    """Analysis tables for a set of cores, parallel and/or persisted.

    The returned analyses come from (and feed) the in-process memo of
    :func:`analysis_for`.  With ``max_tam_width`` given, each core's
    table is completed up to that budget: first from the in-memory memo,
    then from ``cache`` (when provided), and finally by computing --
    fanned out over ``jobs`` worker processes when more than one is
    requested (see :func:`repro.parallel.resolve_jobs`).  Freshly
    computed tables are stored back to ``cache`` atomically.

    With ``jobs`` serial and no cache this degrades to the historical
    lazy behavior: analyses fill in on demand.  Results are bit-identical
    along every path; only the wall-clock differs.
    """
    analyses = {
        core.name: analysis_for(core, mode=mode, samples=samples, grid=grid)
        for core in cores
    }
    obs.inc("analysis.cores_requested", len(analyses))
    if max_tam_width is None or (resolve_jobs(jobs) <= 1 and cache is None):
        return analyses

    with obs.span(
        "analyze-cores", cores=len(analyses), max_tam_width=max_tam_width
    ) as span_attrs:
        pending: list[str] = []
        for name, analysis in analyses.items():
            if analysis.is_complete_for(max_tam_width):
                obs.inc("analysis.memo_complete")
                continue
            if cache is not None and analysis.fingerprint is not None:
                payload = cache.load(analysis.fingerprint)
                if payload is not None:
                    obs.inc("analysis.disk_cache.hits")
                    try:
                        analysis.load_snapshot(payload)
                    except SnapshotError:
                        pass
                else:
                    obs.inc("analysis.disk_cache.misses")
                if analysis.is_complete_for(max_tam_width):
                    continue
            pending.append(name)
        span_attrs["pending"] = len(pending)

        if pending:
            if resolve_jobs(jobs) <= 1:
                for name in pending:
                    _precompute_observed(analyses[name], max_tam_width)
            else:
                active = obs.current()
                parent_path = (
                    active.tracer.current_path() if active is not None else ""
                )
                tasks = []
                for name in pending:
                    analysis = analyses[name]
                    partially_warm = analysis._compressed or analysis._uncompressed
                    seed = analysis.snapshot() if partially_warm else None
                    tasks.append(
                        (
                            analysis.core,
                            analysis.mode,
                            analysis.samples,
                            analysis.grid,
                            max_tam_width,
                            seed,
                            active is not None,
                        )
                    )
                for name, payload, worker_obs in parallel_map(
                    _snapshot_worker, tasks, jobs=jobs
                ):
                    analyses[name].load_snapshot(payload)
                    if worker_obs is not None and active is not None:
                        active.tracer.merge(
                            worker_obs["spans"], parent_path=parent_path
                        )
                        active.registry.merge(worker_obs["metrics"])
            if cache is not None:
                for name in pending:
                    fingerprint = analyses[name].fingerprint
                    if fingerprint is not None:
                        cache.store(fingerprint, analyses[name].snapshot())
    return analyses


# ---------------------------------------------------------------------------
# Module-level analysis cache: experiments repeatedly analyze the same
# cores (e.g. ckt-2 appears in System1, System2, System3 and System4).
# ---------------------------------------------------------------------------

_CACHE: dict[tuple[Core, str, int, int, int | None], CoreAnalysis] = {}


def analysis_for(
    core: Core,
    *,
    mode: Mode = "auto",
    samples: int = DEFAULT_SAMPLES,
    grid: int = DEFAULT_GRID,
    cubes: TestCubeSet | None = None,
) -> CoreAnalysis:
    """Shared, memoized :class:`CoreAnalysis` for a core.

    External ``cubes`` are keyed by object identity: reuse the same
    :class:`TestCubeSet` instance to share the analysis.
    """
    key = (core, mode, samples, grid, id(cubes) if cubes is not None else None)
    analysis = _CACHE.get(key)
    if analysis is None:
        analysis = CoreAnalysis(
            core, mode=mode, samples=samples, grid=grid, cubes=cubes
        )
        _CACHE[key] = analysis
    return analysis


def clear_analysis_cache(cache: AnalysisDiskCache | None = None) -> None:
    """Drop all memoized analyses (tests use this for isolation).

    Always clears the in-process memo; when a disk cache is passed, its
    on-disk entries are deleted too, so both layers start cold.
    """
    _CACHE.clear()
    if cache is not None:
        cache.clear()
