"""Small Pareto-front utilities used across the exploration layer."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs

T = TypeVar("T")


def pareto_front(
    items: Iterable[T],
    *,
    cost: Callable[[T], float],
    resource: Callable[[T], float],
) -> list[T]:
    """Keep the items where no other item is <= in both cost and resource.

    Typical use: wrapper designs, keeping only (TAM width, test time)
    pairs where widening the TAM actually helps.

    Tie semantics: among items with equal resource and equal cost the
    first occurrence wins (the sort is stable); an item whose cost
    merely equals the best seen at a smaller resource is dropped (the
    extra resource bought nothing).
    """
    ordered = sorted(items, key=lambda it: (resource(it), cost(it)))
    obs.inc("explore.pareto_front_evaluations")
    obs.inc("explore.pareto_items_considered", len(ordered))
    # Within one resource value the cheapest item comes first, so a
    # same-resource successor can never beat the front's tail -- a
    # strict cost improvement is the only reason to extend the front.
    front: list[T] = []
    best_cost = float("inf")
    for item in ordered:
        if cost(item) < best_cost:
            front.append(item)
            best_cost = cost(item)
    return front


def pareto_fronts(points: Sequence[Sequence[float]]) -> list[list[int]]:
    """Non-dominated sorting of n-objective points (all minimized).

    Returns index lists: front 0 is the Pareto front of ``points``,
    front 1 the front once front 0 is removed, and so on.  Point ``a``
    dominates ``b`` when it is <= in every objective and < in at least
    one.  Duplicated points land in the same front.  O(n^2 m) for n
    points and m objectives -- made for search populations, not for
    millions of points.
    """
    remaining = list(range(len(points)))
    obs.inc("explore.pareto_items_considered", len(remaining))
    fronts: list[list[int]] = []
    while remaining:
        front = [
            i
            for i in remaining
            if not any(
                j != i and _dominates(points[j], points[i])
                for j in remaining
            )
        ]
        if not front:  # pragma: no cover -- dominance is irreflexive
            front = list(remaining)
        fronts.append(front)
        survivors = set(front)
        remaining = [i for i in remaining if i not in survivors]
    return fronts


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def is_non_increasing(values: Sequence[float]) -> bool:
    """True if the sequence never increases (monotonicity checks)."""
    return all(b <= a for a, b in zip(values, values[1:]))


def non_monotonic_indices(values: Sequence[float]) -> list[int]:
    """Indices ``i`` where ``values[i] < values[i+1]`` (an uptick follows).

    The paper's key observation is that compressed test time has such
    upticks both over wrapper-chain counts and over TAM widths.
    """
    return [i for i in range(len(values) - 1) if values[i] < values[i + 1]]
