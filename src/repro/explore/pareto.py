"""Small Pareto-front utilities used across the exploration layer."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs

T = TypeVar("T")


def pareto_front(
    items: Iterable[T],
    *,
    cost: Callable[[T], float],
    resource: Callable[[T], float],
) -> list[T]:
    """Keep the items where no other item is <= in both cost and resource.

    Typical use: wrapper designs, keeping only (TAM width, test time)
    pairs where widening the TAM actually helps.  Ties keep the first
    occurrence (stable).
    """
    ordered = sorted(items, key=lambda it: (resource(it), cost(it)))
    obs.inc("explore.pareto_front_evaluations")
    obs.inc("explore.pareto_items_considered", len(ordered))
    front: list[T] = []
    best_cost = float("inf")
    last_resource: float | None = None
    for item in ordered:
        c, r = cost(item), resource(item)
        if c < best_cost:
            if front and last_resource == r:
                front.pop()  # same resource, strictly better cost
            front.append(item)
            best_cost = c
            last_resource = r
    return front


def is_non_increasing(values: Sequence[float]) -> bool:
    """True if the sequence never increases (monotonicity checks)."""
    return all(b <= a for a, b in zip(values, values[1:]))


def non_monotonic_indices(values: Sequence[float]) -> list[int]:
    """Indices ``i`` where ``values[i] < values[i+1]`` (an uptick follows).

    The paper's key observation is that compressed test time has such
    upticks both over wrapper-chain counts and over TAM widths.
    """
    return [i for i in range(len(values) - 1) if values[i] < values[i + 1]]
