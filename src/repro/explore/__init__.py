"""Per-core design-space exploration over decompressor I/O widths.

For each core the paper sweeps all feasible (w, m) decompressor
configurations -- w TAM input bits, m wrapper-chain output bits with
``w = ceil(log2(m+1)) + 2`` -- and records the compressed test time
``tau_c(w, m)``.  These lookup tables are what the SOC-level optimizer
schedules from.
"""

from repro.explore.cache import (
    AnalysisDiskCache,
    CacheStats,
    analysis_fingerprint,
    default_cache_dir,
    resolve_cache,
)
from repro.explore.dse import (
    CompressedPoint,
    UncompressedPoint,
    CoreAnalysis,
    SnapshotError,
    analysis_for,
    analyze_soc_cores,
    clear_analysis_cache,
)
from repro.explore.pareto import pareto_front, is_non_increasing
from repro.explore.selection import (
    TechniqueChoice,
    TechniqueSelector,
    select_technique,
)

__all__ = [
    "TechniqueChoice",
    "TechniqueSelector",
    "select_technique",
    "AnalysisDiskCache",
    "CacheStats",
    "CompressedPoint",
    "UncompressedPoint",
    "CoreAnalysis",
    "SnapshotError",
    "analysis_fingerprint",
    "analysis_for",
    "analyze_soc_cores",
    "clear_analysis_cache",
    "default_cache_dir",
    "resolve_cache",
    "pareto_front",
    "is_non_increasing",
]
