"""Persistent, content-addressed cache of per-core analysis tables.

The expensive part of the paper's flow is step 2: evaluating the
compressed test time ``tau_c(w, m)`` over every feasible decompressor
configuration of every core.  Those tables depend only on the core's
parameters and the analysis settings -- never on the SOC, the width
budget, or the scheduling mode -- so they are reusable across optimizer
runs, experiments, and process restarts.

Entries are keyed by :func:`analysis_fingerprint`, a SHA-256 digest over

* the core's value identity (:meth:`repro.soc.core.Core.fingerprint`),
* the resolved analysis mode (``exact`` / ``estimate``),
* the evaluation grid, and the estimator sample count (estimate mode),
* the cache schema version and the estimator code version
  (:data:`repro.compression.estimator.ESTIMATOR_VERSION`).

Changing any of these changes the digest, so stale entries are never
served -- they simply stop being addressed and can be garbage-collected
with :meth:`AnalysisDiskCache.clear`.

Robustness guarantees:

* **atomic writes** -- entries are written to a same-directory temp file
  and published with ``os.replace``, so readers never observe a partial
  entry and concurrent writers cannot interleave bytes;
* **corruption detection** -- every entry embeds a checksum over its
  canonical payload; truncated, garbled, or mismatched entries are
  treated as misses and recomputed, never raised;
* **merging** -- a store merges with any entry already on disk, so runs
  at different width budgets accumulate into one table per core.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"

#: Bump on any incompatible change to the entry layout.
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-soc/analysis``."""
    env = os.environ.get(ENV_CACHE_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-soc" / "analysis"


def analysis_fingerprint(
    core,
    *,
    mode: str,
    samples: int,
    grid: int,
) -> str:
    """Content address of one core's analysis table.

    ``mode`` must already be resolved to ``"exact"`` or ``"estimate"``
    (``CoreAnalysis`` resolves ``"auto"`` during construction).  The
    sample count only enters the digest in estimate mode: the exact
    encoder never samples, so exact tables are shared across ``samples``
    settings.
    """
    from repro.compression.estimator import ESTIMATOR_VERSION

    if mode not in ("exact", "estimate"):
        raise ValueError(f"mode must be resolved, got {mode!r}")
    parts = {
        "schema": CACHE_SCHEMA_VERSION,
        "estimator": ESTIMATOR_VERSION,
        "core": core.fingerprint(),
        "mode": mode,
        "grid": grid,
        "samples": samples if mode == "estimate" else None,
    }
    text = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _payload_checksum(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`AnalysisDiskCache` instance.

    ``hits``/``misses``/``stores``/``corrupt`` count this instance's
    traffic; ``entries``/``total_bytes`` reflect the directory's current
    on-disk state (shared with other processes).
    """

    directory: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    stores: int
    corrupt: int


class AnalysisDiskCache:
    """Directory of content-addressed analysis-table entries."""

    def __init__(self, directory: str | os.PathLike[str] | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._corrupt = 0

    # ------------------------------------------------------------------

    def _path_for(self, fingerprint: str) -> Path:
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return self.directory / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> dict | None:
        """Payload stored under ``fingerprint``, or ``None``.

        Any defect -- missing file, truncated JSON, wrong schema or
        fingerprint, checksum mismatch -- is a miss, never an exception:
        the caller recomputes and the next store repairs the entry.
        """
        path = self._path_for(fingerprint)
        try:
            raw = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            self._misses += 1
            return None
        try:
            entry = json.loads(raw)
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != CACHE_SCHEMA_VERSION
                or entry.get("fingerprint") != fingerprint
            ):
                raise ValueError("entry header mismatch")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
            if entry.get("checksum") != _payload_checksum(payload):
                raise ValueError("checksum mismatch")
        except (ValueError, KeyError, TypeError):
            self._corrupt += 1
            self._misses += 1
            return None
        self._hits += 1
        return payload

    def store(self, fingerprint: str, payload: dict, *, merge: bool = True) -> None:
        """Atomically publish ``payload`` under ``fingerprint``.

        With ``merge=True`` (the default) dict-valued sections of an
        existing valid entry are folded in first, so runs that explored
        different regions of the design space accumulate rather than
        overwrite.  Concurrent writers each publish a complete, valid
        entry via atomic rename; the last one wins, and since all
        writers derive entries from the same deterministic analysis, any
        winner is correct.
        """
        if merge:
            existing = self.load(fingerprint)
            if existing is not None:
                merged = dict(payload)
                for key, section in existing.items():
                    ours = merged.get(key)
                    if isinstance(section, dict) and isinstance(ours, dict):
                        merged[key] = {**section, **ours}
                    elif key not in merged:
                        merged[key] = section
                payload = merged
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        path = self._path_for(fingerprint)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{fingerprint[:16]}-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._stores += 1

    # ------------------------------------------------------------------

    def _entry_paths(self) -> list[Path]:
        try:
            return [p for p in self.directory.iterdir() if p.suffix == ".json"]
        except OSError:
            return []

    def clear(self) -> int:
        """Delete every entry (and stray temp file); returns the count."""
        removed = 0
        try:
            children = list(self.directory.iterdir())
        except OSError:
            return 0
        for path in children:
            if path.suffix not in (".json", ".tmp"):
                continue
            try:
                path.unlink()
            except OSError:
                continue
            if path.suffix == ".json":
                removed += 1
        return removed

    def stats(self) -> CacheStats:
        entries = self._entry_paths()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            directory=str(self.directory),
            entries=len(entries),
            total_bytes=total,
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            corrupt=self._corrupt,
        )


def resolve_cache(
    cache_dir: str | os.PathLike[str] | None = None,
    use_cache: bool | None = None,
) -> AnalysisDiskCache | None:
    """Resolve the (cache_dir, use_cache) knobs into a cache, or ``None``.

    Most specific wins:

    * ``use_cache=False`` disables caching outright;
    * an explicit ``cache_dir`` enables it at that location (even under
      ``REPRO_NO_CACHE`` -- code that names a directory means it);
    * otherwise ``REPRO_NO_CACHE`` set non-empty disables, and
      ``REPRO_CACHE_DIR`` enables at that directory;
    * ``use_cache=True`` enables it at :func:`default_cache_dir`;
    * all-defaults resolves to ``None``: library calls stay free of
      filesystem side effects unless asked (the CLI asks).
    """
    if use_cache is False:
        return None
    if cache_dir is not None:
        return AnalysisDiskCache(cache_dir)
    if os.environ.get(ENV_NO_CACHE, "").strip():
        return None
    if os.environ.get(ENV_CACHE_DIR, "").strip():
        return AnalysisDiskCache()
    if use_cache:
        return AnalysisDiskCache()
    return None
