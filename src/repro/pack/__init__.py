"""Flexible-width test scheduling via 2D rectangle packing.

The paper's architecture step fixes the TAM widths up front and
partitions the ATE channels; the Dhaka-group follow-ups (arXiv
1008.3320, "Efficient Wrapper/TAM Co-Optimization for SOC Using
Rectangle Packing", and arXiv 1008.4446, the diagonal-length variant)
instead treat each core test as a *rectangle* -- width = the TAM wires
it occupies, height = its test time at that width -- and pack the
rectangles into a ``W_TAM x T`` strip.  Wires are time-shared: a core
may use 6 wires for its duration and hand them to two 3-wire cores
afterwards, which no fixed partition can express.

The subsystem plugs into the staged pipeline as alternative
architecture/schedule stages (``--architecture packing --schedule
packing``); the :class:`~repro.pack.packer.PackedPlan` it produces
materializes into the ordinary
:class:`~repro.core.architecture.TestArchitecture` (one single-core TAM
per rectangle), so reporting, export, serve, and verification all work
unchanged.  :func:`repro.verify.verify_packed` re-checks the packing
geometry itself.

See ``docs/packing.md`` for the model, the two placement heuristics,
and the fixed-vs-flexible benchmark comparison.
"""

from repro.pack.packer import (
    HEURISTICS,
    PackedPlan,
    PackedRect,
    pack_rectangles,
    packed_architecture,
)
from repro.pack.rects import CoreRectangles, RectCandidate, core_rectangles
from repro.pack.skyline import Skyline

__all__ = [
    "HEURISTICS",
    "CoreRectangles",
    "PackedPlan",
    "PackedRect",
    "RectCandidate",
    "Skyline",
    "core_rectangles",
    "pack_rectangles",
    "packed_architecture",
]
