"""Per-core rectangle candidates from the wrapper/DSE tables.

A core is not one rectangle but a *family*: at every TAM width ``w``
the wrapper/decompressor co-design gives a test time ``tau_c(w, m)``
(the same ``time_of`` lookup the list scheduler uses), so the packer
may choose the shape as well as the position.  The family is staircase
monotone -- more wires never make a test slower -- so only the Pareto
corners matter: the *narrowest* width achieving each distinct test
time.  Pruning to those corners keeps the packer's candidate loop
linear in the number of distinct times instead of the full width range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

#: ``(core name, tam width) -> test time`` -- the scheduler's lookup.
TimeFn = Callable[[str, int], int]


@dataclass(frozen=True)
class RectCandidate:
    """One admissible shape for a core's rectangle."""

    width: int
    time: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"rectangle width must be >= 1, got {self.width}")
        if self.time < 0:
            raise ValueError(f"rectangle time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class CoreRectangles:
    """A core's Pareto-pruned shape family, width ascending."""

    name: str
    candidates: tuple[RectCandidate, ...]

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError(f"core {self.name!r} has no rectangle candidates")
        for a, b in zip(self.candidates, self.candidates[1:]):
            if b.width <= a.width or b.time >= a.time:
                raise ValueError(
                    f"candidates for {self.name!r} must be strictly "
                    f"Pareto-ordered (width up, time down); got "
                    f"({a.width}, {a.time}) then ({b.width}, {b.time})"
                )

    @property
    def widest(self) -> RectCandidate:
        """The widest (fastest) shape."""
        return self.candidates[-1]

    @property
    def narrowest(self) -> RectCandidate:
        """The 1-wire-adjacent (tallest) shape."""
        return self.candidates[0]


def pareto_candidates(
    times_by_width: Sequence[tuple[int, int]]
) -> tuple[RectCandidate, ...]:
    """Keep the narrowest width for each distinct achievable time.

    ``times_by_width`` is ``(width, time)`` pairs sorted by width
    ascending.  A width whose time does not strictly improve on a
    narrower width is dominated (same or worse time for more wires)
    and dropped.
    """
    kept: list[RectCandidate] = []
    for width, time in times_by_width:
        if kept and time >= kept[-1].time:
            continue
        kept.append(RectCandidate(width=width, time=time))
    return tuple(kept)


def _thin(
    candidates: tuple[RectCandidate, ...], limit: int
) -> tuple[RectCandidate, ...]:
    """Subsample to ``limit`` shapes, always keeping both extremes."""
    if limit < 2:
        raise ValueError(f"max_widths must be >= 2, got {limit}")
    if len(candidates) <= limit:
        return candidates
    last = len(candidates) - 1
    picks = sorted({round(i * last / (limit - 1)) for i in range(limit)})
    return tuple(candidates[i] for i in picks)


def core_rectangles(
    names: Sequence[str],
    time_of: TimeFn,
    max_width: int,
    *,
    max_widths: int | None = None,
) -> tuple[CoreRectangles, ...]:
    """The rectangle family of every core, in input order.

    Evaluates ``time_of`` at every width ``1..max_width`` and prunes to
    the Pareto corners.  ``max_widths`` optionally thins each family to
    at most that many shapes (extremes always kept) -- the knob behind
    ``--pack-opt max_widths=N`` for very wide budgets.
    """
    if max_width < 1:
        raise ValueError(f"max_width must be >= 1, got {max_width}")
    families: list[CoreRectangles] = []
    for name in names:
        corners = pareto_candidates(
            [(w, time_of(name, w)) for w in range(1, max_width + 1)]
        )
        if max_widths is not None:
            corners = _thin(corners, max_widths)
        families.append(CoreRectangles(name=name, candidates=corners))
    return tuple(families)
