"""Bottom-left and diagonal-length rectangle packing of core tests.

Both heuristics place one rectangle per core, largest-first, onto a
:class:`~repro.pack.skyline.Skyline`, choosing the core's shape (which
admissible width) and position together:

* **bottom-left** (arXiv 1008.3320): pick the candidate/position pair
  finishing earliest -- minimize ``(finish, support, x, width)``, the
  list scheduler's greedy rule generalized to 2D;
* **diagonal** (arXiv 1008.4446): pick the pair whose occupied corner
  ``(x + width, finish)`` stays closest to the origin under normalized
  axes -- minimize the squared diagonal length
  ``((x + w) / W)^2 + (finish / T)^2`` with ``T`` the area lower bound
  ``ceil(total area / W)``.  Growing the two axes in balance avoids the
  bottom-left rule's tall-and-narrow towers when wide rectangles
  remain.

Every tie breaks deterministically (finish, support, x, width, and
placement order breaks ties by core name), so packed plans are
bit-stable across runs -- the repo-wide contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.pack.rects import CoreRectangles
from repro.pack.skyline import Skyline

#: ``(core name, tam width) -> CoreConfig`` -- the scheduler's resolver.
ConfigFn = Callable[[str, int], CoreConfig]

#: The registered placement heuristics (``auto`` packs with both and
#: keeps the better makespan).
HEURISTICS: tuple[str, ...] = ("bottom-left", "diagonal")


@dataclass(frozen=True)
class PackedRect:
    """One core's placed rectangle: wires ``[x, x+width)``, time ``[start, end)``."""

    name: str
    x: int
    width: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"packed width must be >= 1, got {self.width}")
        if self.x < 0:
            raise ValueError(f"negative wire offset {self.x}")
        if self.end < self.start:
            raise ValueError(
                f"rectangle ends at {self.end} before it starts at {self.start}"
            )


@dataclass(frozen=True)
class PackedPlan:
    """A complete packing of one SOC's core tests into the TAM strip."""

    soc_name: str
    width_budget: int
    heuristic: str
    rects: tuple[PackedRect, ...]
    placements_evaluated: int = 0

    @property
    def makespan(self) -> int:
        """SOC test time: the top edge of the highest rectangle."""
        return max((r.end for r in self.rects), default=0)

    @property
    def occupied_area(self) -> int:
        """Total rectangle area (wire-cycles actually streaming)."""
        return sum(r.width * (r.end - r.start) for r in self.rects)

    @property
    def utilization(self) -> float:
        """Occupied area over the ``W x makespan`` strip (idle = waste)."""
        strip = self.width_budget * self.makespan
        return self.occupied_area / strip if strip else 0.0


def area_lower_bound(
    families: Sequence[CoreRectangles], width_budget: int
) -> int:
    """``ceil(min total area / W)``: no packing can finish earlier.

    Uses each core's minimum-area shape, so the bound holds whatever
    widths the packer picks.
    """
    total = sum(
        min(c.width * c.time for c in family.candidates)
        for family in families
    )
    return -(-total // width_budget)


def _placement_order(
    families: Sequence[CoreRectangles],
    heuristic: str,
    width_budget: int,
    time_scale: int,
) -> list[CoreRectangles]:
    """Largest-first placement order; big rectangles placed early pack
    tight, stragglers fill the gaps."""
    if heuristic == "diagonal":
        def size(family: CoreRectangles) -> float:
            widest = family.widest
            return math.hypot(
                widest.width / width_budget, widest.time / time_scale
            )
    else:
        def size(family: CoreRectangles) -> float:
            return float(family.widest.time)
    return sorted(families, key=lambda f: (-size(f), f.name))


def pack_rectangles(
    soc_name: str,
    families: Sequence[CoreRectangles],
    width_budget: int,
    *,
    heuristic: str = "bottom-left",
) -> PackedPlan:
    """Pack every core's rectangle into the ``width_budget``-wire strip.

    ``heuristic`` is one of :data:`HEURISTICS`; ``"auto"`` runs both
    and returns the plan with the smaller makespan (ties prefer
    bottom-left, the cheaper rule).
    """
    if heuristic == "auto":
        plans = [
            pack_rectangles(
                soc_name, families, width_budget, heuristic=name
            )
            for name in HEURISTICS
        ]
        best = min(plans, key=lambda p: (p.makespan, HEURISTICS.index(p.heuristic)))
        evaluated = sum(p.placements_evaluated for p in plans)
        return PackedPlan(
            soc_name=best.soc_name,
            width_budget=best.width_budget,
            heuristic=best.heuristic,
            rects=best.rects,
            placements_evaluated=evaluated,
        )
    if heuristic not in HEURISTICS:
        raise ValueError(
            f"unknown packing heuristic {heuristic!r}; "
            f"expected one of {HEURISTICS + ('auto',)}"
        )
    for family in families:
        if family.widest.width > width_budget:
            raise ValueError(
                f"core {family.name!r} offers a {family.widest.width}-wide "
                f"shape but the strip is only {width_budget} wires"
            )

    # Normalization scale for the diagonal rule: the area lower bound
    # (clamped to >= 1) makes "one strip width" and "one ideal
    # makespan" the same unit length.
    time_scale = max(1, area_lower_bound(families, width_budget))
    skyline = Skyline(width_budget)
    rects: list[PackedRect] = []
    evaluated = 0
    for family in _placement_order(
        families, heuristic, width_budget, time_scale
    ):
        best_key: tuple | None = None
        best: tuple[int, int, int, int] | None = None  # (x, w, start, end)
        for candidate in family.candidates:
            for x, support in skyline.positions(candidate.width):
                evaluated += 1
                finish = support + candidate.time
                tie = (finish, support, x, candidate.width)
                if heuristic == "diagonal":
                    reach = (x + candidate.width) / width_budget
                    rise = finish / time_scale
                    key = (reach * reach + rise * rise,) + tie
                else:
                    key = tie
                if best_key is None or key < best_key:
                    best_key = key
                    best = (x, candidate.width, support, finish)
        assert best is not None  # families are non-empty by construction
        x, w, start, end = best
        skyline.place(x, w, end)
        rects.append(
            PackedRect(name=family.name, x=x, width=w, start=start, end=end)
        )
    return PackedPlan(
        soc_name=soc_name,
        width_budget=width_budget,
        heuristic=heuristic,
        rects=tuple(rects),
        placements_evaluated=evaluated,
    )


def packed_architecture(
    plan: PackedPlan,
    config_of: ConfigFn,
    *,
    placement: DecompressorPlacement,
) -> TestArchitecture:
    """Materialize a :class:`PackedPlan` as a :class:`TestArchitecture`.

    Each rectangle becomes its own single-core TAM of the chosen width
    (TAM indices follow placement order), so the architecture's
    existing validation, rendering, export, and model checks all apply.
    The sum of TAM widths may legitimately exceed ``ate_channels`` --
    rectangles *time-share* wires -- which is why packed plans are
    verified with the instantaneous-width sweep instead of the width
    sum (see :func:`repro.verify.verify_packed`).
    """
    tams = []
    scheduled = []
    for index, rect in enumerate(plan.rects):
        config = config_of(rect.name, rect.width)
        if config.test_time != rect.end - rect.start:
            raise ValueError(
                f"rectangle for {rect.name!r} is {rect.end - rect.start} "
                f"cycles tall but the {rect.width}-wire config needs "
                f"{config.test_time}"
            )
        tams.append(Tam(index=index, width=rect.width))
        scheduled.append(
            ScheduledCore(
                config=config,
                tam_index=index,
                start=rect.start,
                end=rect.end,
            )
        )
    return TestArchitecture(
        soc_name=plan.soc_name,
        placement=placement,
        tams=tuple(tams),
        scheduled=tuple(scheduled),
        ate_channels=plan.width_budget,
    )
