"""Pipeline stages exposing the rectangle packer as step 3 + step 4.

``PackingArchitectureStage`` generates each core's rectangle family
from the same lookup tables the list scheduler uses, packs them, and
parks the :class:`~repro.pack.packer.PackedPlan` in ``ctx.extras``
(the plug-in hand-off pattern the constrained and per-TAM flows use).
``PackingScheduleStage`` materializes it into the ordinary
:class:`~repro.core.architecture.TestArchitecture`.

The stages register under the names ``("architecture", "packing")``
and ``("schedule", "packing")`` -- selected via
``RunConfig(architecture="packing", schedule="packing")`` or the CLI's
``--architecture packing --schedule packing``.  ``ctx.strategy`` is
recorded as ``packing-<heuristic>``; the verify layer keys its packed
checks off that prefix.
"""

from __future__ import annotations

from repro import obs
from repro.pack.packer import HEURISTICS, pack_rectangles, packed_architecture
from repro.pack.rects import core_rectangles
from repro.pipeline.stages import PlanContext, Stage, _require_tables

#: ``ctx.extras`` key carrying the packed plan between the two stages.
EXTRAS_KEY = "packed_plan"

#: ``ctx.strategy`` prefix marking a packed plan (survives export).
STRATEGY_PREFIX = "packing"


class PackingArchitectureStage(Stage):
    """Step-3 replacement: pack core rectangles instead of partitioning."""

    name = "architecture"

    def __init__(self, heuristic: str | None = None) -> None:
        #: When set, overrides the ``--pack-opt heuristic=...`` choice.
        self.heuristic = heuristic

    def run(self, ctx: PlanContext) -> None:
        tables = _require_tables(ctx, self.name)
        opts = ctx.config.pack_options()
        heuristic = self.heuristic or opts.get("heuristic", "auto")
        if heuristic not in HEURISTICS + ("auto",):
            raise ValueError(
                f"unknown packing heuristic {heuristic!r}; expected one of "
                f"{HEURISTICS + ('auto',)}"
            )
        max_widths = opts.get("max_widths")
        unknown = set(opts) - {"heuristic", "max_widths"}
        if unknown:
            raise ValueError(
                f"unknown --pack-opt keys: {sorted(unknown)}; "
                "known: heuristic, max_widths"
            )
        with obs.span("pack", heuristic=heuristic) as attrs:
            families = core_rectangles(
                ctx.names,
                tables.time_of,
                ctx.width_budget,
                max_widths=int(max_widths) if max_widths is not None else None,
            )
            plan = pack_rectangles(
                ctx.soc.name,
                families,
                ctx.width_budget,
                heuristic=heuristic,
            )
            attrs["placements"] = plan.placements_evaluated
            attrs["makespan"] = plan.makespan
        obs.inc(
            "architecture.partitions_evaluated", plan.placements_evaluated
        )
        ctx.extras[EXTRAS_KEY] = plan
        ctx.partitions_evaluated = plan.placements_evaluated
        ctx.strategy = f"{STRATEGY_PREFIX}-{plan.heuristic}"
        ctx.events.emit(
            "search-done",
            self.name,
            strategy=ctx.strategy,
            partitions=plan.placements_evaluated,
            makespan=plan.makespan,
            utilization=round(plan.utilization, 4),
        )


class PackingScheduleStage(Stage):
    """Step-4 replacement: one single-core TAM per packed rectangle."""

    name = "schedule"

    def run(self, ctx: PlanContext) -> None:
        plan = ctx.extras.get(EXTRAS_KEY)
        if plan is None:
            raise RuntimeError(
                "PackingScheduleStage needs PackingArchitectureStage to "
                "run first"
            )
        tables = _require_tables(ctx, self.name)
        with obs.span("place-cores", cores=len(plan.rects)):
            ctx.architecture = packed_architecture(
                plan, tables.config_of, placement=ctx.placement
            )
        obs.inc("schedule.cores_scheduled", len(ctx.architecture.scheduled))
        ctx.events.emit(
            "scheduled",
            self.name,
            test_time=ctx.architecture.test_time,
            tams=len(ctx.architecture.tams),
        )
