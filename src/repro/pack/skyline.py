"""The skyline occupancy structure behind the rectangle packer.

A skyline is the classic strip-packing summary of what is already
placed: for every wire (x position) the earliest time it becomes free,
stored as maximal segments of equal height.  Placing a rectangle only
ever needs two operations -- enumerate the candidate left edges with
their support heights, and raise the covered span to the rectangle's
top -- both linear in the number of segments.

Axes follow the packing papers: x is the TAM wire index in
``[0, width)``, y is time growing upward from 0.  Heights are integer
cycles, like every schedule time in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Segment:
    """A maximal run of wires free from ``height`` onward."""

    x: int
    end: int
    height: int


class Skyline:
    """Occupancy profile of a ``width``-wire strip."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError(f"strip width must be >= 1, got {width}")
        self.width = width
        self._segments: list[Segment] = [Segment(0, width, 0)]

    # ------------------------------------------------------------------

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    @property
    def makespan(self) -> int:
        """The highest point of the skyline."""
        return max(s.height for s in self._segments)

    def support(self, x: int, w: int) -> int:
        """Earliest time all wires in ``[x, x + w)`` are free."""
        if x < 0 or x + w > self.width:
            raise ValueError(
                f"span [{x}, {x + w}) outside the {self.width}-wire strip"
            )
        return max(
            s.height for s in self._segments if s.x < x + w and s.end > x
        )

    def positions(self, w: int) -> Iterator[tuple[int, int]]:
        """Candidate ``(x, support)`` placements for a ``w``-wide rect.

        Candidate left edges are the segment starts (the classic
        skyline rule) plus the right-flush position ``width - w``:
        restricting to these corners loses no optimal placement for
        the bottom-left rule and keeps the search linear.
        """
        if w < 1 or w > self.width:
            return
        edges = [s.x for s in self._segments if s.x + w <= self.width]
        flush = self.width - w
        if flush not in edges:
            edges.append(flush)
        for x in sorted(set(edges)):
            yield x, self.support(x, w)

    def place(self, x: int, w: int, top: int) -> None:
        """Raise the skyline over ``[x, x + w)`` to ``top``.

        ``top`` must be at least the current support (a rectangle
        cannot sink below material already placed).
        """
        if top < self.support(x, w):
            raise ValueError(
                f"top {top} below current support {self.support(x, w)} "
                f"over [{x}, {x + w})"
            )
        rebuilt: list[Segment] = []
        for s in self._segments:
            if s.end <= x or s.x >= x + w:
                rebuilt.append(s)
                continue
            if s.x < x:
                rebuilt.append(Segment(s.x, x, s.height))
            if s.end > x + w:
                rebuilt.append(Segment(x + w, s.end, s.height))
        rebuilt.append(Segment(x, x + w, top))
        rebuilt.sort(key=lambda s: s.x)
        # Merge adjacent equal heights back into maximal segments.
        merged: list[Segment] = []
        for s in rebuilt:
            if merged and merged[-1].height == s.height and merged[-1].end == s.x:
                merged[-1] = Segment(merged[-1].x, s.end, s.height)
            else:
                merged.append(s)
        self._segments = merged
