"""Concurrent planning service: job queue, dedup, backpressure, transport.

The service layer keeps one warm planning process resident -- wrapper
LRU, lookup tables, and the on-disk analysis cache stay hot -- and
feeds it a stream of co-optimization requests:

* :mod:`repro.serve.jobs` -- the job state machine and the bounded,
  priority-ordered queue with explicit backpressure;
* :mod:`repro.serve.protocol` -- the line-JSON wire format and the
  content fingerprint identical requests coalesce on;
* :mod:`repro.serve.worker` -- per-attempt subprocess execution with
  timeout, cancellation, and crash detection;
* :mod:`repro.serve.service` -- :class:`PlanningService`, the asyncio
  orchestrator (dedup, retry with backoff, graceful shutdown with
  queue persistence, :mod:`repro.obs` integration);
* :mod:`repro.serve.telemetry` -- :class:`ServiceTelemetry`, the
  always-on live instrument layer behind the ``metrics``/``health``
  ops (rolling latency windows, OpenMetrics exposition);
* :mod:`repro.serve.server` / :mod:`repro.serve.client` -- the TCP
  front end (``repro-soc serve``) and the blocking Python client.

Every request carries a transport-level correlation id
(``request_id``): structured log records, spans on both sides of the
process boundary, and worker-subprocess spans merged back into the
parent all share it, stitching one cross-process trace per request.

Results delivered through the service are bit-identical to calling the
:class:`~repro.pipeline.pipeline.Pipeline` directly (differentially
tested) -- the transport ships the lossless ``result_to_json`` form.
See ``docs/service.md`` for the protocol and semantics.
"""

from repro.serve.errors import (
    BackpressureError,
    JobCancelled,
    JobFailed,
    JobNotFound,
    JobTimeout,
    ProtocolError,
    ServiceError,
    ShuttingDown,
    WorkerCrashed,
    WorkerError,
)
from repro.serve.jobs import Job, JobQueue, JobState
from repro.serve.protocol import PROTOCOL_VERSION, PlanRequest
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceServer,
    run_server,
)
from repro.serve.service import PlanningService, ServiceSettings
from repro.serve.telemetry import ServiceTelemetry, health_view
from repro.serve.client import ServiceClient, SubmitTicket, connect_with_retry

__all__ = [
    "BackpressureError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "JobCancelled",
    "JobFailed",
    "JobNotFound",
    "JobQueue",
    "JobState",
    "JobTimeout",
    "PROTOCOL_VERSION",
    "PlanRequest",
    "PlanningService",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceSettings",
    "ServiceTelemetry",
    "ShuttingDown",
    "SubmitTicket",
    "WorkerCrashed",
    "WorkerError",
    "connect_with_retry",
    "health_view",
    "run_server",
]
