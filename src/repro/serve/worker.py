"""Worker-side job execution: one subprocess per attempt.

The service runs every job attempt in a dedicated ``multiprocessing``
child (``spawn`` context -- fork is unsafe under the service's threaded
asyncio loop) connected by a one-way pipe.  That buys the three
lifecycle guarantees a pool cannot give per job:

* **timeout** -- the parent polls the pipe with a deadline and
  *terminates* the child when it expires, so a runaway plan cannot
  wedge a worker slot;
* **cancellation** -- the parent polls a cancel flag between pipe
  polls and terminates the child on request;
* **crash detection** -- a child that dies without delivering a result
  (killed, OOM, ``os._exit``) is surfaced as :class:`WorkerCrashed`,
  the one failure the service retries with backoff.

``run_job_inline`` is the degraded fallback for platforms where
multiprocessing cannot spawn (restricted sandboxes) and the fast path
for tests: same contract minus preemptive timeout/kill (a thread cannot
be terminated), sharing the parent's in-process analysis memo.

The ``fault`` request field is the chaos hook the fault-injection tests
drive: ``{"sleep_s": 30}`` delays the worker (timeout tests),
``{"exit_on_attempts": [0]}`` hard-kills the child on the listed
attempt indices (crash/retry tests), ``{"corrupt_plan": "overlap"}``
tampers with the finished plan so the verification gate trips
(invalid-plan tests).  Normal clients never set it; it participates in
the dedup fingerprint so faulty requests cannot coalesce with clean
ones.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Mapping

from repro.serve.errors import (
    InvalidPlan,
    JobCancelled,
    JobTimeout,
    WorkerCrashed,
    WorkerError,
)

#: Seconds between pipe polls; bounds cancel/timeout reaction latency.
POLL_INTERVAL_S = 0.05

#: Exit code the fault hook uses; distinctive in failure messages.
FAULT_EXIT_CODE = 43


def execute_plan(
    payload: Mapping[str, Any], *, strip_report: bool = False
) -> str:
    """Run one plan request to its ``result_to_json`` text.

    Pure apart from the planning engine's own caches: the payload is
    the :meth:`~repro.serve.protocol.PlanRequest.worker_payload` dict,
    the return value the lossless JSON the transport ships verbatim.

    Every result is re-checked by the independent invariant checker
    before it is serialized; a violation raises :class:`InvalidPlan`,
    so the service never replies with a plan it cannot prove
    consistent.  The ``corrupt_plan`` fault hook tampers with the plan
    between planning and verification, for testing that gate.

    ``strip_report=True`` drops the :class:`~repro.obs.report.RunReport`
    the pipeline attaches under an enabled observability context.  The
    telemetry-collecting subprocess path uses it so the wire result
    stays byte-identical with telemetry on or off (the report carries
    wall-clock timings; spans and metrics ship out of band instead).
    """
    import dataclasses

    from repro.pipeline import RunConfig
    from repro.pipeline import plan as run_plan
    from repro.reporting.export import result_to_json
    from repro.soc.industrial import load_design
    from repro.verify import corrupt_result, verify_plan
    from repro.verify.invariants import PlanVerificationError

    soc = load_design(str(payload["design"]))
    config = RunConfig.from_dict(payload.get("config") or {})
    try:
        result = run_plan(soc, int(payload["width"]), config)
    except PlanVerificationError as error:
        # A config.verify pipeline already failed its own gate.
        raise InvalidPlan(str(error)) from error
    corrupt = (payload.get("fault") or {}).get("corrupt_plan")
    if corrupt:
        result = corrupt_result(result, str(corrupt))
    report = verify_plan(result, soc, config=config)
    if not report.ok:
        raise InvalidPlan(report.summary())
    if strip_report and result.report is not None:
        result = dataclasses.replace(result, report=None)
    return result_to_json(result)


def _apply_fault_hooks(payload: Mapping[str, Any]) -> None:
    fault = payload.get("fault") or {}
    sleep_s = fault.get("sleep_s")
    if sleep_s:
        time.sleep(float(sleep_s))
    attempt = int(payload.get("attempt", 0))
    if attempt in tuple(fault.get("exit_on_attempts", ())):
        os._exit(FAULT_EXIT_CODE)


def _subprocess_entry(payload: dict[str, Any], conn: Any) -> None:
    """Child-process main: plan, ship the result, exit.

    When the parent asked for telemetry (``payload["telemetry"]``), the
    child plans under a scoped observability context of its own and
    ships the collected spans and metrics *out of band* as a third
    tuple element -- the result text itself stays byte-identical with
    telemetry on or off (see ``execute_plan(strip_report=True)``).  The
    parent re-roots the spans under its attempt span, stitching the
    cross-process trace together per request id.
    """
    # The child must never attach run reports the parent did not ask
    # for: a spawned child starts clean, but be explicit for any
    # platform that inherits an enabled context.
    from repro import obs
    from repro.obs.logging import bind_request_id

    obs.disable()
    telemetry = bool(payload.get("telemetry"))
    request_id = str(payload.get("request_id") or "")
    try:
        _apply_fault_hooks(payload)
        if telemetry:
            with obs.enabled() as active, bind_request_id(request_id):
                with obs.span(
                    "worker/plan",
                    request_id=request_id,
                    design=str(payload.get("design", "")),
                    width=int(payload.get("width", 0)),
                    pid=os.getpid(),
                ):
                    text = execute_plan(payload, strip_report=True)
            shipped = {
                "spans": active.tracer.snapshot(),
                "metrics": active.registry.snapshot(),
            }
            conn.send(("ok", text, shipped))
        else:
            text = execute_plan(payload)
            conn.send(("ok", text))
    except InvalidPlan as error:
        # Typed separately so the parent re-raises the dedicated code
        # (the generic branch collapses everything to WorkerError).
        try:
            conn.send(("invalid", str(error)))
        except Exception:
            os._exit(1)
    except BaseException as error:  # noqa: BLE001 - ships the failure
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except Exception:
            os._exit(1)
    finally:
        conn.close()


def run_job_in_process(
    payload: Mapping[str, Any],
    *,
    timeout_s: float | None = None,
    should_cancel: Callable[[], bool] | None = None,
    poll_interval_s: float = POLL_INTERVAL_S,
) -> str | tuple[str, dict[str, Any]]:
    """Execute one attempt in a fresh child process (blocking).

    Returns the result text -- or, when the payload requested
    telemetry and the child shipped some, a ``(text, telemetry)``
    tuple where ``telemetry`` holds the child's portable ``spans`` and
    ``metrics`` snapshots for the parent to merge.

    Raises :class:`JobTimeout` / :class:`JobCancelled` after
    terminating the child, :class:`WorkerCrashed` when the child dies
    silently, :class:`WorkerError` when the child reports a
    deterministic failure.
    """
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_subprocess_entry, args=(dict(payload), child_conn), daemon=True
    )
    deadline = (
        time.monotonic() + float(timeout_s) if timeout_s is not None else None
    )
    proc.start()
    child_conn.close()
    try:
        while True:
            if parent_conn.poll(poll_interval_s):
                try:
                    message = parent_conn.recv()
                except EOFError:
                    break  # died between connect and send: crashed
                proc.join()
                kind, value, *extra = message
                if kind == "ok":
                    if extra and extra[0]:
                        return str(value), dict(extra[0])
                    return str(value)
                if kind == "invalid":
                    raise InvalidPlan(str(value))
                raise WorkerError(str(value))
            if should_cancel is not None and should_cancel():
                _terminate(proc)
                raise JobCancelled("cancelled while running")
            if deadline is not None and time.monotonic() > deadline:
                _terminate(proc)
                raise JobTimeout(
                    f"exceeded {timeout_s:.3g} s deadline; worker terminated"
                )
            if not proc.is_alive() and not parent_conn.poll():
                break
        proc.join()
        raise WorkerCrashed(
            f"worker died without a result (exit code {proc.exitcode})",
            exitcode=proc.exitcode,
        )
    finally:
        parent_conn.close()
        if proc.is_alive():
            _terminate(proc)


def _terminate(proc: multiprocessing.process.BaseProcess) -> None:
    proc.terminate()
    proc.join(timeout=5.0)
    if proc.is_alive():  # pragma: no cover - last resort
        proc.kill()
        proc.join(timeout=5.0)


def run_job_inline(
    payload: Mapping[str, Any],
    *,
    timeout_s: float | None = None,
    should_cancel: Callable[[], bool] | None = None,
    poll_interval_s: float = POLL_INTERVAL_S,
) -> str:
    """Thread-mode attempt: no process isolation, best-effort checks.

    Cancellation and timeout are honored only *before* the plan starts
    (a running thread cannot be killed); ``fault`` exit hooks are
    ignored (they would take the whole service down).
    """
    del poll_interval_s
    if should_cancel is not None and should_cancel():
        raise JobCancelled("cancelled before start")
    started = time.monotonic()
    text = execute_plan(payload)
    if timeout_s is not None and time.monotonic() - started > timeout_s:
        raise JobTimeout(
            f"finished after its {timeout_s:.3g} s deadline (inline worker "
            "cannot preempt); result discarded"
        )
    return text


def process_isolation_available() -> bool:
    """Whether the spawn-based worker can run on this platform."""
    try:
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_noop, daemon=True)
        proc.start()
        proc.join(timeout=30.0)
        return proc.exitcode == 0
    except Exception:
        return False


def _noop() -> None:
    return None
