"""Job bookkeeping and the bounded, priority-ordered job queue.

A :class:`Job` is one accepted plan request moving through the state
machine::

    QUEUED --> RUNNING --> DONE
       |          |`-----> FAILED     (timeout, crash budget, worker error)
       |          `------> CANCELLED
       `-----------------> CANCELLED  (cancelled before dispatch)

The :class:`JobQueue` is deliberately *not* ``asyncio.PriorityQueue``:

* **bounded with rejection** -- a full queue raises immediately
  (the service maps that to the backpressure protocol response) instead
  of suspending the producer, because a suspended ``submit`` looks like
  a hung service to every client behind it;
* **priority + FIFO** -- higher ``priority`` pops first, equal
  priorities pop in submission order (a monotonic sequence number
  breaks ties, so the heap never compares :class:`Job` objects);
* **inspectable** -- the service persists pending jobs across restarts
  (:meth:`JobQueue.snapshot`) and removes cancelled jobs lazily.
"""

from __future__ import annotations

import asyncio
import enum
import heapq
import itertools
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.serve.protocol import PlanRequest


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def new_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class Job:
    """One accepted plan request and everything known about it."""

    request: PlanRequest
    id: str = field(default_factory=new_job_id)
    state: JobState = JobState.QUEUED
    #: Executions started so far (1 on the first attempt).
    attempts: int = 0
    #: The worker's ``result_to_json`` text, verbatim (DONE only).
    result_json: str | None = None
    error: str | None = None
    error_code: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: How many submissions this job absorbed beyond the first.
    coalesced: int = 0
    #: Correlation id of the submission that *created* the job (dedup
    #: hits keep the original's id -- the trace belongs to the job, not
    #: to each coalesced submission).  Transport-level on purpose: it
    #: lives here and on the wire, never on :class:`PlanRequest`, so it
    #: can never leak into the dedup fingerprint.
    request_id: str = ""

    def __post_init__(self) -> None:
        self.fingerprint = self.request.fingerprint()
        #: Set to wake ``result(wait=True)`` callers; created lazily in
        #: the service's event loop.
        self.done_event: asyncio.Event | None = None
        #: Observed by the in-flight worker; set to request termination.
        self.cancel_requested = False

    # ------------------------------------------------------------------
    # Transitions (the service is the only caller).
    # ------------------------------------------------------------------

    def mark_running(self) -> None:
        self.state = JobState.RUNNING
        if self.started_at is None:
            self.started_at = time.time()

    def mark_done(self, result_json: str) -> None:
        self.result_json = result_json
        self.state = JobState.DONE
        self._finish()

    def mark_failed(self, code: str, message: str) -> None:
        self.error_code = code
        self.error = message
        self.state = JobState.FAILED
        self._finish()

    def mark_cancelled(self, message: str = "cancelled") -> None:
        self.error_code = "cancelled"
        self.error = message
        self.state = JobState.CANCELLED
        self._finish()

    def _finish(self) -> None:
        self.finished_at = time.time()
        if self.done_event is not None:
            self.done_event.set()


class QueueFull(Exception):
    """Internal signal; the service converts it to BackpressureError."""


class JobQueue:
    """Bounded max-priority queue of :class:`Job` (asyncio-native)."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._event = asyncio.Event()
        self._closed = False

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self._pending())

    def _pending(self) -> Iterator[Job]:
        return (
            job for _, _, job in self._heap if job.state is JobState.QUEUED
        )

    @property
    def full(self) -> bool:
        return len(self) >= self.max_depth

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------

    def push(self, job: Job) -> None:
        """Enqueue; raises :class:`QueueFull` past ``max_depth``."""
        if self._closed:
            raise RuntimeError("queue is closed")
        if self.full:
            raise QueueFull(
                f"queue at capacity ({self.max_depth} pending jobs)"
            )
        heapq.heappush(
            self._heap, (-job.request.priority, next(self._seq), job)
        )
        self._event.set()

    async def pop(self) -> Job | None:
        """Next runnable job, or ``None`` once closed.

        Lazily discards jobs cancelled while queued.  Waits (without
        polling) while the queue is open and empty.  A closed queue
        returns ``None`` immediately even if jobs remain -- shutdown
        persists those instead of dispatching them.
        """
        while True:
            if self._closed:
                return None
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                if job.state is JobState.QUEUED:
                    return job
            self._event.clear()
            if self._heap:
                continue
            await self._event.wait()

    def close(self) -> None:
        """Stop the consumer: ``pop`` returns ``None`` from now on.

        Jobs still queued stay in the heap -- shutdown snapshots them
        for persistence.
        """
        self._closed = True
        self._event.set()

    # ------------------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """Pending jobs in pop order, as JSON-ready persistence records."""
        ordered = sorted(
            (
                entry
                for entry in self._heap
                if entry[2].state is JobState.QUEUED
            ),
            key=lambda entry: (entry[0], entry[1]),
        )
        return [
            {
                "job_id": job.id,
                "submitted_at": job.submitted_at,
                "request": job.request.to_dict(),
                "request_id": job.request_id,
            }
            for _, _, job in ordered
        ]
