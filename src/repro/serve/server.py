"""The line-JSON TCP front end of the planning service.

Stdlib-only transport: ``asyncio.start_server`` on a host/port (port 0
lets the OS pick -- the ready announcement carries the real one), one
JSON object per line in each direction (:mod:`repro.serve.protocol`).

Operations::

    ping                          liveness + protocol version
    designs                       the design catalog (name discovery)
    submit   design width ...     enqueue (or coalesce) a plan request
    status   [job_id]             one job's state, or service stats
    result   job_id [wait] [timeout_s]   fetch (optionally await) a result
    cancel   job_id               cancel queued / flag running
    stats                         queue depth, counters, load hints
    metrics                       OpenMetrics exposition text
    health                        liveness, rolling latency, error budget
    shutdown [drain]              drain and stop the server

Every request is correlated: the server adopts the client's
``request_id`` field (minting one when absent) and binds it for the
duration of the dispatch, so every structured log record and span the
request causes carries it.  Responses that name a job report the
*job's* correlation id -- for a dedup hit that is the original
submission's id, i.e. the trace this submission joined; every other
response echoes the caller's id.

``SIGTERM``/``SIGINT`` trigger the same graceful path as the
``shutdown`` op: stop accepting, drain in-flight jobs, persist the
queue, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from typing import Any, Callable

from repro import obs
from repro.obs.logging import bind_request_id, current_request_id, get_logger
from repro.serve.errors import ServiceError
from repro.serve.jobs import JobState
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    PlanRequest,
    decode_message,
    encode_message,
    error_response,
    job_brief,
    ok_response,
)
from repro.serve.service import PlanningService, designs_catalog

_LOG = get_logger("repro.serve.server")

#: Default TCP port of `repro-soc serve` (clients share the constant).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7465

#: Ceiling for one request line; a frame beyond it is a client bug.
MAX_LINE_BYTES = 1 << 20


class ServiceServer:
    """Socket front end binding one :class:`PlanningService`."""

    def __init__(
        self,
        service: PlanningService,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        #: Set by the ``shutdown`` op or a signal; awaited by ``serve_until_stopped``.
        self.stop_requested: asyncio.Event = asyncio.Event()
        self._drain_on_stop = True

    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES,
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> int:
        """Close the listener, then shut the service down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return await self.service.shutdown(drain=self._drain_on_stop)

    def request_stop(self, *, drain: bool = True) -> None:
        self._drain_on_stop = drain and self._drain_on_stop
        self.stop_requested.set()

    async def serve_until_stopped(self) -> int:
        """Run until a stop is requested; returns persisted-job count."""
        await self.stop_requested.wait()
        return await self.stop()

    def ready_announcement(self) -> dict[str, Any]:
        """The machine-readable line the CLI prints once listening."""
        return {
            "event": "ready",
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "workers": self.service.workers,
            "isolation": self.service.settings.isolation,
            "telemetry": self.service.telemetry.enabled,
        }

    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_message(
                            error_response("bad-request", "request too large")
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, line: bytes) -> dict[str, Any]:
        try:
            message = decode_message(line)
        except ServiceError as error:
            self.service.telemetry.count("requests")
            self.service.telemetry.count("request_errors")
            return dict(error.to_payload(), v=PROTOCOL_VERSION)
        rid = str(message.get("request_id") or "")
        with bind_request_id(rid) as bound:
            self.service.telemetry.count("requests")
            try:
                response = await self._dispatch(message)
            except ServiceError as error:
                response = dict(error.to_payload(), v=PROTOCOL_VERSION)
            except Exception as error:  # never let a defect kill the reader
                _LOG.error(
                    "request-failed",
                    op=str(message.get("op")),
                    error=repr(error),
                )
                response = error_response("internal", repr(error))
            if not response.get("ok", False):
                self.service.telemetry.count("request_errors")
            response.setdefault("request_id", bound)
            return response

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "ping":
            return ok_response(pong=True, protocol=PROTOCOL_VERSION)
        if op == "designs":
            return ok_response(designs=designs_catalog())
        if op == "submit":
            return self._op_submit(message)
        if op == "status":
            return self._op_status(message)
        if op == "result":
            return await self._op_result(message)
        if op == "cancel":
            job = self.service.cancel(self._job_id(message))
            return ok_response(**job_brief(job))
        if op == "stats":
            return ok_response(stats=self.service.stats())
        if op == "metrics":
            return ok_response(metrics=self.service.metrics_text())
        if op == "health":
            return ok_response(health=self.service.health())
        if op == "shutdown":
            drain = bool(message.get("drain", True))
            self.request_stop(drain=drain)
            return ok_response(stopping=True, drain=drain)
        return error_response("bad-request", f"unknown op {op!r}")

    # ------------------------------------------------------------------

    @staticmethod
    def _job_id(message: dict[str, Any]) -> str:
        job_id = message.get("job_id")
        if not job_id:
            from repro.serve.errors import ProtocolError

            raise ProtocolError("missing job_id")
        return str(job_id)

    def _op_submit(self, message: dict[str, Any]) -> dict[str, Any]:
        request = PlanRequest.from_dict(message)
        rid = current_request_id()
        # Synchronous op, so a span on the loop thread cannot interleave
        # with another task's (the tracer's span stack is thread-local).
        with obs.span(
            "serve/submit",
            design=request.design,
            width=request.width,
            request_id=rid,
        ):
            job, deduped = self.service.submit(request, request_id=rid)
        return ok_response(deduped=deduped, **job_brief(job))

    def _op_status(self, message: dict[str, Any]) -> dict[str, Any]:
        if not message.get("job_id"):
            return ok_response(stats=self.service.stats())
        job = self.service.get(self._job_id(message))
        return ok_response(**job_brief(job))

    async def _op_result(self, message: dict[str, Any]) -> dict[str, Any]:
        job_id = self._job_id(message)
        wait = bool(message.get("wait", True))
        timeout = message.get("timeout_s")
        job = self.service.get(job_id)
        if wait and not job.state.terminal:
            try:
                job = await self.service.wait(
                    job_id, float(timeout) if timeout is not None else None
                )
            except asyncio.TimeoutError:
                return error_response(
                    "timeout",
                    f"job {job_id} still {job.state.value} after wait",
                    **job_brief(job),
                )
        if job.state is JobState.DONE and job.result_json is not None:
            return ok_response(
                result=json.loads(job.result_json), **job_brief(job)
            )
        if job.state.terminal:
            return error_response(
                job.error_code or "job-failed",
                job.error or f"job {job_id} {job.state.value}",
                **job_brief(job),
            )
        return error_response(
            "not-ready", f"job {job_id} is {job.state.value}", **job_brief(job)
        )


# ---------------------------------------------------------------------------
# Blocking entry point (what `repro-soc serve` runs).
# ---------------------------------------------------------------------------


def run_server(
    service: PlanningService,
    *,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    on_ready: Callable[[dict[str, Any]], None] | None = None,
    on_stopped: Callable[[dict[str, Any]], None] | None = None,
) -> int:
    """Serve until ``shutdown``/SIGTERM/SIGINT; returns an exit code.

    The library owns no output stream: the caller (the CLI) renders
    the ready/stopped events via the callbacks -- ``on_ready`` fires
    once the socket is listening (with the real port, pid, and worker
    picture), ``on_stopped`` after shutdown (with the persisted-job
    count and final counters).
    """
    return asyncio.run(
        _serve_main(
            service,
            host=host,
            port=port,
            on_ready=on_ready,
            on_stopped=on_stopped,
        )
    )


async def _serve_main(
    service: PlanningService,
    *,
    host: str,
    port: int,
    on_ready: Callable[[dict[str, Any]], None] | None,
    on_stopped: Callable[[dict[str, Any]], None] | None,
) -> int:
    server = ServiceServer(service, host=host, port=port)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal handlers; shutdown op only
    if on_ready is not None:
        on_ready(server.ready_announcement())
    persisted = await server.serve_until_stopped()
    if on_stopped is not None:
        on_stopped(
            {
                "event": "stopped",
                "persisted_jobs": persisted,
                "counters": dict(service.counters),
            }
        )
    return 0
