"""The planning service: queueing, dedup, worker lifecycle, shutdown.

:class:`PlanningService` owns the whole job lifecycle inside one
asyncio event loop:

* **admission** (:meth:`submit`) -- dedup/coalescing against in-flight
  jobs by content fingerprint, bounded-queue backpressure with a
  load-based ``retry_after`` estimate;
* **dispatch** -- a single dispatcher task pops jobs in priority order
  and hands them to a bounded worker-slot pool
  (:func:`repro.parallel.resolve_jobs` sizes it, so ``REPRO_JOBS``
  means the same thing here as everywhere else in the engine);
* **execution** -- each attempt runs in a killable subprocess
  (:mod:`repro.serve.worker`), with per-job timeout, cooperative
  cancellation, and bounded retry with exponential backoff for worker
  *crashes* (deterministic worker errors are not retried);
* **shutdown** (:meth:`shutdown`) -- stops admission, lets in-flight
  jobs drain, and persists still-queued jobs to ``state_dir`` so a
  restarted service resubmits them.

Everything the service observes is mirrored three ways: an
authoritative plain-``dict`` counter set served by :meth:`stats`
(always on -- the protocol's ``stats`` op must work without
observability), the service-owned :class:`ServiceTelemetry` layer
backing the ``metrics``/``health`` ops (rolling latency windows,
OpenMetrics exposition; disable with ``ServiceSettings.telemetry``),
and the opt-in global :mod:`repro.obs` registry/tracer
(``serve.jobs_*`` counters, the ``serve.queue_depth`` gauge, one
``serve/attempt`` span per execution) when a context is enabled.

Every job carries a transport-level **request id** minted at admission
(or supplied by the client).  The id is bound to the job's task context
(:func:`repro.obs.logging.bind_request_id`) so every structured log
record of the job's lifecycle carries it, is injected into the worker
payload so a telemetry-collecting subprocess stitches its spans into
the same trace, and is echoed in every protocol response that mentions
the job.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from collections import Counter, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro import obs
from repro.obs.logging import bind_request_id, get_logger, new_request_id
from repro.serve.errors import (
    BackpressureError,
    InvalidPlan,
    JobCancelled,
    JobNotFound,
    JobTimeout,
    ShuttingDown,
    WorkerCrashed,
    WorkerError,
)
from repro.serve.jobs import Job, JobQueue, JobState, QueueFull
from repro.serve.protocol import PlanRequest
from repro.serve.telemetry import ServiceTelemetry, health_view
from repro.serve.worker import run_job_in_process, run_job_inline

#: Persistence schema of the queue state file.
STATE_SCHEMA_VERSION = 1
STATE_FILENAME = "queue-state.json"

#: Runner signature: (payload, timeout_s=..., should_cancel=...) ->
#: json text, or (json text, telemetry dict) when the payload asked
#: for telemetry and the worker shipped spans/metrics out of band.
Runner = Callable[..., Any]

_LOG = get_logger("repro.serve.service")


@dataclass(frozen=True)
class ServiceSettings:
    """Every tunable of one service instance."""

    #: Worker slots; ``None`` defers to ``REPRO_JOBS`` (else 1), like
    #: every other jobs knob in the engine.
    workers: int | None = None
    #: Queued-job bound; submissions past it get backpressure.
    max_depth: int = 64
    #: Re-executions after a worker *crash* (not other failures).
    max_retries: int = 2
    #: Backoff after the first crash; doubles per retry.
    retry_base_s: float = 0.1
    retry_cap_s: float = 5.0
    #: Deadline for jobs that do not carry their own ``timeout_s``.
    default_timeout_s: float | None = None
    #: ``"process"`` (killable subprocess per attempt) or ``"thread"``
    #: (in-process; no preemptive timeout/kill -- degraded platforms
    #: and fast tests only).
    isolation: str = "process"
    #: Directory for queue persistence across restarts (``None``: off).
    state_dir: str | None = None
    #: Finished jobs retained for ``status``/``result`` queries.
    history_limit: int = 256
    #: Live telemetry (rolling windows, OpenMetrics exposition).  Off,
    #: the ``metrics``/``health`` ops degrade gracefully (empty
    #: exposition, no rolling block) and every recording call is an
    #: early-out no-op -- the overhead-gate configuration.
    telemetry: bool = True

    def __post_init__(self) -> None:
        if self.isolation not in ("process", "thread"):
            raise ValueError(
                f"isolation must be 'process' or 'thread', "
                f"got {self.isolation!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def resolve_workers(self) -> int:
        from repro.parallel import resolve_jobs

        return resolve_jobs(self.workers)


class PlanningService:
    """Concurrent plan execution behind a bounded, deduplicating queue."""

    def __init__(
        self,
        settings: ServiceSettings | None = None,
        *,
        runner: Runner | None = None,
    ) -> None:
        self.settings = settings if settings is not None else ServiceSettings()
        self.workers = self.settings.resolve_workers()
        self.queue = JobQueue(self.settings.max_depth)
        #: Every known job by id (bounded by ``history_limit``).
        self.jobs: dict[str, Job] = {}
        #: fingerprint -> non-terminal job; the dedup index.
        self._inflight: dict[str, Job] = {}
        self._finished_order: deque[str] = deque()
        self.counters: Counter[str] = Counter()
        self.telemetry = ServiceTelemetry(enabled=self.settings.telemetry)
        self.started_at = time.time()
        self._job_seconds_total = 0.0
        if runner is not None:
            self._runner = runner
        elif self.settings.isolation == "process":
            self._runner = run_job_in_process
        else:
            self._runner = run_job_inline
        self._slots = asyncio.Semaphore(self.workers)
        self._dispatcher: asyncio.Task[None] | None = None
        self._worker_tasks: set[asyncio.Task[None]] = set()
        self._accepting = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> int:
        """Restore any persisted queue and begin dispatching.

        Returns the number of restored jobs.
        """
        restored = self._restore_queue()
        self._accepting = True
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        self._set_depth_gauge()
        _LOG.info(
            "service-started",
            workers=self.workers,
            isolation=self.settings.isolation,
            max_depth=self.settings.max_depth,
            telemetry=self.telemetry.enabled,
            restored=restored,
        )
        return restored

    async def shutdown(self, *, drain: bool = True) -> int:
        """Stop admission, settle in-flight work, persist the queue.

        ``drain=True`` (the graceful path, also the SIGTERM path) lets
        running jobs finish; ``drain=False`` cancels them.  Jobs still
        *queued* are persisted to ``state_dir`` either way and restored
        by the next :meth:`start`.  Returns the persisted-job count.
        """
        self._accepting = False
        self.queue.close()
        if not drain:
            # Flag before awaiting the dispatcher: it may be blocked on
            # a worker slot that only a cancelled job will free.
            for job in list(self.jobs.values()):
                if job.state is JobState.RUNNING:
                    job.cancel_requested = True
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        persisted = self._persist_queue()
        _LOG.info(
            "service-shutdown",
            drain=drain,
            persisted=persisted,
            uptime_s=round(time.time() - self.started_at, 3),
        )
        return persisted

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------

    def submit(
        self, request: PlanRequest, *, request_id: str | None = None
    ) -> tuple[Job, bool]:
        """Accept, coalesce, or reject one plan request.

        Returns ``(job, deduped)``.  Raises :class:`BackpressureError`
        when the queue is full and :class:`ShuttingDown` once
        :meth:`shutdown` has begun.  ``request_id`` correlates the
        job's logs/spans end to end; the service mints one when the
        caller does not supply it.  A dedup hit keeps the *original*
        job's id (the trace belongs to the computation, not to each
        coalesced submission).
        """
        if not self._accepting:
            raise ShuttingDown("service is shutting down")
        rid = request_id or new_request_id()
        fingerprint = request.fingerprint()
        existing = self._inflight.get(fingerprint)
        if existing is not None and not existing.state.terminal:
            existing.coalesced += 1
            self._count("jobs_deduped")
            obs.instant(
                "serve/deduped", job=existing.id, design=request.design
            )
            _LOG.debug(
                "job-deduped",
                job=existing.id,
                design=request.design,
                coalesced=existing.coalesced,
                original_request_id=existing.request_id,
            )
            return existing, True
        if self.queue.full:
            self._count("jobs_rejected")
            retry_after = self.retry_after_estimate()
            _LOG.warning(
                "job-rejected",
                design=request.design,
                queue_depth=len(self.queue),
                retry_after_s=retry_after,
            )
            raise BackpressureError(
                f"queue full ({len(self.queue)} pending jobs)",
                retry_after=retry_after,
            )
        job = Job(request=request, request_id=rid)
        job.done_event = asyncio.Event()
        try:
            self.queue.push(job)
        except QueueFull:  # racing submission filled the last slot
            self._count("jobs_rejected")
            raise BackpressureError(
                f"queue full ({len(self.queue)} pending jobs)",
                retry_after=self.retry_after_estimate(),
            ) from None
        self.jobs[job.id] = job
        self._inflight[fingerprint] = job
        self._count("jobs_submitted")
        self._set_depth_gauge()
        _LOG.info(
            "job-submitted",
            job=job.id,
            design=request.design,
            width=request.width,
            priority=request.priority,
            queue_depth=len(self.queue),
        )
        return job, False

    def retry_after_estimate(self) -> float:
        """Seconds until a queue slot is plausibly free, from live load."""
        completed = self.counters["jobs_completed"]
        avg = self._job_seconds_total / completed if completed else 2.0
        backlog = len(self.queue) + self.running_count()
        estimate = backlog * avg / max(1, self.workers)
        return round(min(60.0, max(0.5, estimate)), 2)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFound(f"no job {job_id!r}") from None

    async def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        if job.state.terminal or job.done_event is None:
            return job
        await asyncio.wait_for(job.done_event.wait(), timeout)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job now, or flag a running one to stop."""
        job = self.get(job_id)
        if job.state is JobState.QUEUED:
            job.mark_cancelled("cancelled while queued")
            self._forget_inflight(job)
            self._count("jobs_cancelled")
            self._remember_finished(job)
            self._set_depth_gauge()
        elif job.state is JobState.RUNNING:
            job.cancel_requested = True
        return job

    def running_count(self) -> int:
        return sum(
            1 for j in self.jobs.values() if j.state is JobState.RUNNING
        )

    def stats(self) -> dict[str, Any]:
        """The live service picture the protocol's ``stats`` op returns."""
        return {
            "queue_depth": len(self.queue),
            "queue_capacity": self.settings.max_depth,
            "running": self.running_count(),
            "workers": self.workers,
            "isolation": self.settings.isolation,
            "accepting": self._accepting,
            "jobs_known": len(self.jobs),
            "uptime_s": round(time.time() - self.started_at, 3),
            "counters": dict(self.counters),
            "retry_after_hint": self.retry_after_estimate(),
            "telemetry": self.telemetry.enabled,
        }

    def health(self) -> dict[str, Any]:
        """The ``health`` op payload (see :func:`health_view`)."""
        return health_view(
            telemetry=self.telemetry,
            counters=self.counters,
            queue_depth=len(self.queue),
            queue_capacity=self.settings.max_depth,
            running=self.running_count(),
            workers=self.workers,
            accepting=self._accepting,
            dispatcher_alive=self._dispatcher is not None
            and not self._dispatcher.done(),
            uptime_s=time.time() - self.started_at,
        )

    def metrics_text(self) -> str:
        """The ``metrics`` op payload: OpenMetrics exposition text."""
        return self.telemetry.openmetrics()

    # ------------------------------------------------------------------
    # Dispatch and execution.
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            # Slot first, then pop: a job must stay *queued* (and count
            # toward the backpressure bound) until a worker can actually
            # take it, so capacity is exactly max_depth + workers.
            await self._slots.acquire()
            job = await self.queue.pop()
            if job is None:
                self._slots.release()
                return
            if job.state is not JobState.QUEUED:
                self._slots.release()
                continue
            task = asyncio.create_task(
                self._run_job(job), name=f"repro-serve-{job.id}"
            )
            self._worker_tasks.add(task)
            task.add_done_callback(self._worker_tasks.discard)

    async def _run_job(self, job: Job) -> None:
        with bind_request_id(job.request_id):
            await self._run_job_bound(job)

    async def _run_job_bound(self, job: Job) -> None:
        request = job.request
        timeout_s = (
            request.timeout_s
            if request.timeout_s is not None
            else self.settings.default_timeout_s
        )
        job.mark_running()
        self._set_depth_gauge()
        self._record_queue_wait(job)
        _LOG.info(
            "job-started",
            job=job.id,
            design=request.design,
            width=request.width,
            queued_s=round(
                (job.started_at or job.submitted_at) - job.submitted_at, 6
            ),
        )
        try:
            attempts = self.settings.max_retries + 1
            for attempt in range(attempts):
                if job.cancel_requested:
                    job.mark_cancelled("cancelled before attempt")
                    self._count("jobs_cancelled")
                    break
                if attempt:
                    delay = min(
                        self.settings.retry_cap_s,
                        self.settings.retry_base_s * (2 ** (attempt - 1)),
                    )
                    self._count("jobs_retried")
                    obs.instant(
                        "serve/retry", job=job.id, attempt=attempt,
                        backoff_s=delay,
                    )
                    await asyncio.sleep(delay)
                job.attempts = attempt + 1
                try:
                    text = await asyncio.to_thread(
                        self._execute_attempt, job, attempt, timeout_s
                    )
                except WorkerCrashed as error:
                    if attempt + 1 >= attempts:
                        job.mark_failed(
                            error.code,
                            f"{error} ({job.attempts} attempts)",
                        )
                        self._count("jobs_failed")
                        break
                    continue
                except JobTimeout as error:
                    job.mark_failed(error.code, str(error))
                    self._count("jobs_failed")
                    self._count("jobs_timed_out")
                    break
                except JobCancelled as error:
                    job.mark_cancelled(str(error))
                    self._count("jobs_cancelled")
                    break
                except InvalidPlan as error:
                    # The verification gate tripped: a planner defect,
                    # deterministic, so no retry -- but counted apart
                    # from ordinary worker errors for alerting.
                    job.mark_failed(error.code, str(error))
                    self._count("jobs_failed")
                    self._count("jobs_invalid_plan")
                    break
                except WorkerError as error:
                    job.mark_failed(error.code, str(error))
                    self._count("jobs_failed")
                    break
                except Exception as error:  # service-side defect
                    job.mark_failed("service-error", repr(error))
                    self._count("jobs_failed")
                    break
                else:
                    job.mark_done(text)
                    self._count("jobs_completed")
                    if job.started_at and job.finished_at:
                        seconds = job.finished_at - job.started_at
                        self._job_seconds_total += seconds
                        obs.observe("serve.job_seconds", seconds)
                        self.telemetry.observe_execution(seconds)
                    break
        finally:
            if not job.state.terminal:  # defensive: never leave limbo
                job.mark_failed("service-error", "attempt loop fell through")
                self._count("jobs_failed")
            if job.finished_at is not None:
                self.telemetry.observe_turnaround(
                    job.finished_at - job.submitted_at
                )
            self._forget_inflight(job)
            self._remember_finished(job)
            self._slots.release()
            self._set_depth_gauge()
            log = _LOG.info if job.state is JobState.DONE else _LOG.warning
            log(
                "job-finished",
                job=job.id,
                state=job.state.value,
                attempts=job.attempts,
                error_code=job.error_code,
                seconds=round(
                    (job.finished_at or 0.0) - (job.started_at or 0.0), 6
                )
                if job.started_at and job.finished_at
                else None,
            )

    def _execute_attempt(
        self, job: Job, attempt: int, timeout_s: float | None
    ) -> str:
        """One blocking attempt; runs on a worker thread.

        Under an enabled observability context the worker payload asks
        the subprocess to collect telemetry; the spans it ships back
        are re-rooted under this attempt's span path (stamped with the
        job's request id), which is what stitches the client -> queue
        -> worker trace into one hierarchy across process boundaries.
        """
        payload = job.request.worker_payload(attempt)
        payload["request_id"] = job.request_id
        if obs.is_enabled():
            payload["telemetry"] = True
        with obs.span(
            "serve/attempt",
            job=job.id,
            design=job.request.design,
            width=job.request.width,
            attempt=attempt,
            request_id=job.request_id,
        ):
            outcome = self._runner(
                payload,
                timeout_s=timeout_s,
                should_cancel=lambda: job.cancel_requested,
            )
            if isinstance(outcome, tuple):
                text, shipped = outcome
                self._absorb_worker_telemetry(job, shipped)
                return str(text)
            return str(outcome)

    def _record_queue_wait(self, job: Job) -> None:
        """Retrospective ``serve/queued`` span (obs-enabled runs only).

        The wait is only known once dispatch happens, so the span is
        synthesized after the fact and merged rather than recorded by
        a context manager wrapping the wait.
        """
        active = obs.current()
        if active is None:
            return
        active.tracer.merge(
            [
                {
                    "name": "serve/queued",
                    "path": "serve/queued",
                    "start": job.submitted_at,
                    "end": job.started_at or time.time(),
                    "attrs": {
                        "job": job.id,
                        "request_id": job.request_id,
                        "design": job.request.design,
                    },
                    "pid": os.getpid(),
                }
            ]
        )

    def _absorb_worker_telemetry(
        self, job: Job, shipped: Mapping[str, Any]
    ) -> None:
        """Merge a worker subprocess's spans/metrics into this process.

        Called *inside* the ``serve/attempt`` span so
        ``tracer.current_path()`` names the re-root point.  Every
        incoming span gets the job's request id stamped into its
        attributes (without overwriting one the worker set itself).
        """
        spans = list(shipped.get("spans") or [])
        active = obs.current()
        if active is not None and spans:
            for span in spans:
                span.setdefault("attrs", {}).setdefault(
                    "request_id", job.request_id
                )
            active.tracer.merge(
                spans, parent_path=active.tracer.current_path()
            )
        metrics = shipped.get("metrics") or {}
        if metrics:
            if active is not None:
                active.registry.merge(metrics)
            self.telemetry.merge_worker_metrics(metrics)

    # ------------------------------------------------------------------
    # Internal bookkeeping.
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        self.telemetry.count(name, amount)
        obs.inc(f"serve.{name}", amount)

    def _set_depth_gauge(self) -> None:
        depth = len(self.queue)
        self.telemetry.set_queue_depth(depth)
        obs.set_gauge("serve.queue_depth", float(depth))

    def _forget_inflight(self, job: Job) -> None:
        if self._inflight.get(job.fingerprint) is job:
            del self._inflight[job.fingerprint]

    def _remember_finished(self, job: Job) -> None:
        """Bound the finished-job history to ``history_limit``."""
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.settings.history_limit:
            old_id = self._finished_order.popleft()
            old = self.jobs.get(old_id)
            if old is not None and old.state.terminal:
                del self.jobs[old_id]

    # ------------------------------------------------------------------
    # Queue persistence.
    # ------------------------------------------------------------------

    def _state_path(self) -> Path | None:
        if not self.settings.state_dir:
            return None
        return Path(self.settings.state_dir).expanduser() / STATE_FILENAME

    def _persist_queue(self) -> int:
        """Write still-queued jobs for the next service generation."""
        path = self._state_path()
        pending = self.queue.snapshot()
        if path is None:
            return 0
        if not pending:
            path.unlink(missing_ok=True)
            return 0
        payload = {
            "schema": STATE_SCHEMA_VERSION,
            "saved_at": time.time(),
            "jobs": pending,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        # Same atomic-publish discipline as the analysis cache: a
        # crashed write must never leave a half-readable state file.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".queue-state-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.counters["jobs_persisted"] += len(pending)
        return len(pending)

    def _restore_queue(self) -> int:
        """Re-enqueue jobs a previous generation persisted, if any."""
        path = self._state_path()
        if path is None or not path.exists():
            return 0
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("schema") != STATE_SCHEMA_VERSION:
                raise ValueError(f"schema {payload.get('schema')!r}")
            records = list(payload["jobs"])
        except (OSError, ValueError, KeyError, TypeError):
            # A corrupt state file must not block startup; the jobs it
            # held are lost, which clients discover via not-found.
            path.unlink(missing_ok=True)
            self.counters["state_corrupt"] += 1
            return 0
        path.unlink(missing_ok=True)
        restored = 0
        for record in records:
            try:
                request = PlanRequest.from_dict(record["request"])
                job = Job(
                    request=request,
                    id=str(record["job_id"]),
                    request_id=str(record.get("request_id") or "")
                    or new_request_id(),
                )
                job.submitted_at = float(
                    record.get("submitted_at", job.submitted_at)
                )
            except Exception:
                self.counters["state_corrupt"] += 1
                continue
            job.done_event = asyncio.Event()
            self.jobs[job.id] = job
            self._inflight[job.fingerprint] = job
            self.queue.push(job)
            restored += 1
        if restored:
            self._count("jobs_restored", restored)
        return restored


def designs_catalog() -> list[dict[str, Any]]:
    """The design-discovery payload (the ``designs`` protocol op)."""
    from repro.soc.industrial import design_catalog

    return [dict(row) for row in design_catalog()]


def request_from_mapping(data: Mapping[str, Any]) -> PlanRequest:
    """Convenience used by both the server and local embedding."""
    return PlanRequest.from_dict(data)
