"""Wire protocol of the planning service: line-delimited JSON.

Transport
---------
One connection carries a sequence of requests; every request is a
single JSON object on one ``\\n``-terminated line, and every request
gets exactly one JSON-object response line.  Responses carry
``"ok": true`` plus operation fields, or ``"ok": false`` plus a stable
``"error"`` code (see :mod:`repro.serve.errors`).  The protocol is
versioned (:data:`PROTOCOL_VERSION`); the server rejects requests whose
``v`` field names a version it does not speak (a missing ``v`` means
"current").

Dedup fingerprint
-----------------
:meth:`PlanRequest.fingerprint` is the content address requests are
coalesced on: a SHA-256 over the canonical JSON of the *semantic*
request -- design name, width budget, and the result-affecting
:class:`~repro.pipeline.config.RunConfig` fields.  The performance
knobs (``jobs`` / ``cache_dir`` / ``use_cache``) are excluded on
purpose: the engine guarantees bit-identical plans regardless of worker
count or cache state (differentially tested since PR 1), so two
requests differing only in those knobs are the *same computation* and
must coalesce.  Scheduling attributes (priority, timeout) are likewise
excluded -- they shape when a job runs, not what it computes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.pipeline.config import RunConfig
from repro.serve.errors import ProtocolError

PROTOCOL_VERSION = 1

#: RunConfig fields that do not change the planned result; excluded
#: from the dedup fingerprint (see module docstring).  ``verify`` is
#: non-semantic too: the service always verifies before replying, so
#: a verify=True request coalesces with its verify=False twin.
_PERF_KNOBS = ("jobs", "cache_dir", "use_cache", "verify")


@dataclass(frozen=True)
class PlanRequest:
    """One plan submission: what to plan, and how to schedule the job."""

    design: str
    width: int
    config: RunConfig = field(default_factory=RunConfig)
    #: Higher runs earlier; ties are FIFO.
    priority: int = 0
    #: Per-job deadline in seconds (``None``: the service default).
    timeout_s: float | None = None
    #: Fault-injection hook for chaos/fault tests; honored only by the
    #: worker entry, never set by normal clients.  Part of the
    #: fingerprint so a faulty request can never coalesce with a clean
    #: twin.
    fault: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if not self.design:
            raise ProtocolError("request needs a design name")
        if int(self.width) < 1:
            raise ProtocolError(f"width must be >= 1, got {self.width}")

    # ------------------------------------------------------------------

    def semantic_key(self) -> dict[str, Any]:
        """The result-defining content of this request (JSON-ready)."""
        config = self.config.to_dict()
        for knob in _PERF_KNOBS:
            config.pop(knob, None)
        key: dict[str, Any] = {
            "design": self.design,
            "width": int(self.width),
            "config": config,
        }
        if self.fault:
            key["fault"] = dict(self.fault)
        return key

    def fingerprint(self) -> str:
        """Content address for dedup/coalescing (SHA-256 hex digest)."""
        canonical = json.dumps(
            self.semantic_key(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "design": self.design,
            "width": int(self.width),
            "config": self.config.to_dict(),
            "priority": int(self.priority),
        }
        if self.timeout_s is not None:
            data["timeout_s"] = float(self.timeout_s)
        if self.fault:
            data["fault"] = dict(self.fault)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanRequest":
        try:
            design = str(data["design"])
            width = int(data["width"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed plan request: {error!r}") from None
        raw_config = data.get("config") or {}
        try:
            config = RunConfig.from_dict(raw_config)
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"bad config: {error}") from None
        timeout = data.get("timeout_s")
        return cls(
            design=design,
            width=width,
            config=config,
            priority=int(data.get("priority", 0)),
            timeout_s=float(timeout) if timeout is not None else None,
            fault=dict(data["fault"]) if data.get("fault") else None,
        )

    def worker_payload(self, attempt: int = 0) -> dict[str, Any]:
        """What the worker entry receives for one execution attempt."""
        payload = self.to_dict()
        payload["attempt"] = int(attempt)
        return payload


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One protocol frame: compact JSON plus the line terminator."""
    return (
        json.dumps(dict(message), separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    text = line.strip()
    if not text:
        raise ProtocolError("empty message")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"not JSON: {error}") from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(data).__name__}"
        )
    version = data.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
    return data


def ok_response(**fields: Any) -> dict[str, Any]:
    response: dict[str, Any] = {"ok": True, "v": PROTOCOL_VERSION}
    response.update(fields)
    return response


def error_response(code: str, message: str, **fields: Any) -> dict[str, Any]:
    response: dict[str, Any] = {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": code,
        "message": message,
    }
    response.update(fields)
    return response


def job_brief(job: Any) -> dict[str, Any]:
    """The status view of a job every operation shares."""
    brief = {
        "job_id": job.id,
        "state": job.state.value,
        "design": job.request.design,
        "width": job.request.width,
        "priority": job.request.priority,
        "attempts": job.attempts,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "request_id": getattr(job, "request_id", ""),
    }
    if job.error is not None:
        brief["message"] = job.error
        brief["error_code"] = job.error_code
    return brief


__all__ = [
    "PROTOCOL_VERSION",
    "PlanRequest",
    "decode_message",
    "encode_message",
    "error_response",
    "job_brief",
    "ok_response",
]
