"""`repro-soc top`: a live terminal dashboard for a running service.

Separation of concerns mirrors the rest of the CLI surface:
:func:`render_dashboard` is a pure function from the ``stats`` and
``health`` op payloads to one text frame (unit-testable, no I/O, no
clock), and :func:`run_top` owns the poll loop, the ANSI
clear-and-redraw, and the exit conditions.  The dashboard uses only
the public protocol ops, so it works against any service it can reach
-- including one with telemetry disabled, where the rolling-latency
block simply disappears.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Mapping, TextIO

#: Width of the queue-occupancy bar, characters.
BAR_WIDTH = 24

#: ANSI: clear screen + home cursor (what ``top`` itself does).
CLEAR = "\x1b[2J\x1b[H"


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.1f}ms"


def render_dashboard(
    stats: Mapping[str, Any], health: Mapping[str, Any]
) -> str:
    """One dashboard frame from the ``stats`` + ``health`` payloads."""
    lines: list[str] = []
    status = str(health.get("status", "?"))
    uptime = float(health.get("uptime_s", 0.0))
    telemetry = "on" if health.get("telemetry") else "off"
    lines.append(
        f"repro-soc top | status {status} | uptime {uptime:,.0f}s "
        f"| telemetry {telemetry}"
    )

    depth = int(stats.get("queue_depth", 0))
    capacity = int(stats.get("queue_capacity", 0)) or 1
    running = int(stats.get("running", 0))
    workers = int(stats.get("workers", 0))
    accepting = "yes" if stats.get("accepting") else "no"
    lines.append(
        f"queue [{_bar(depth / capacity)}] {depth}/{capacity} "
        f"| running {running}/{workers} workers | accepting {accepting} "
        f"| retry hint {float(stats.get('retry_after_hint', 0.0)):.2g}s"
    )

    counters = dict(stats.get("counters") or {})
    jobs = {
        key.removeprefix("jobs_"): int(value)
        for key, value in sorted(counters.items())
        if key.startswith("jobs_")
    }
    if jobs:
        lines.append(
            "jobs  "
            + "  ".join(f"{name}={count}" for name, count in jobs.items())
        )

    rolling = dict(health.get("rolling") or {})
    if rolling:
        window = float(health.get("window_s", 0.0))
        lines.append(f"rolling latency (last {window:.0f}s):")
        for name, summary in sorted(rolling.items()):
            lines.append(
                f"  {name:<20} n={int(summary.get('count', 0)):<6} "
                f"rate={float(summary.get('rate_per_s', 0.0)):6.2f}/s  "
                f"p50={_ms(float(summary.get('p50', 0.0))):>9}  "
                f"p95={_ms(float(summary.get('p95', 0.0))):>9}  "
                f"p99={_ms(float(summary.get('p99', 0.0))):>9}  "
                f"max={_ms(float(summary.get('max', 0.0))):>9}"
            )

    budget = dict(health.get("error_budget") or {})
    if budget:
        lines.append(
            f"error budget  failure_rate={float(budget.get('failure_rate', 0.0)):.2%}  "
            f"failed={int(budget.get('failed', 0))}  "
            f"timed_out={int(budget.get('timed_out', 0))}  "
            f"cancelled={int(budget.get('cancelled', 0))}  "
            f"rejected={int(budget.get('rejected', 0))}  "
            f"invalid_plan={int(budget.get('invalid_plan', 0))}"
        )
    return "\n".join(lines) + "\n"


def run_top(
    client: Any,
    *,
    interval_s: float = 2.0,
    iterations: int | None = None,
    out: TextIO | None = None,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``stats``/``health`` and redraw until interrupted.

    ``iterations`` bounds the frame count (``--once`` passes 1;
    ``None`` runs until Ctrl-C or the service goes away).  Returns a
    process exit code: 0 on a clean stop, 3 once the service stops
    answering.
    """
    stream = out if out is not None else sys.stdout
    frame = 0
    try:
        while iterations is None or frame < iterations:
            try:
                stats = client.stats()
                health = client.health()
            except Exception as error:
                sys.stderr.write(f"service unreachable: {error}\n")
                return 3
            if clear and frame:
                stream.write(CLEAR)
            stream.write(render_dashboard(stats, health))
            stream.flush()
            frame += 1
            if iterations is None or frame < iterations:
                sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0


__all__ = ["render_dashboard", "run_top"]
