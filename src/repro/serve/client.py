"""Blocking Python client for the planning service.

Stdlib sockets only, mirroring the line-JSON protocol.  Error codes in
responses are raised back as the same exception types the service uses
(:class:`BackpressureError` carries ``retry_after``, and so on), so a
caller's error handling is identical whether it embeds
:class:`~repro.serve.service.PlanningService` or talks to one over TCP.

Typical use::

    from repro.serve.client import ServiceClient

    with ServiceClient(port=7465) as client:
        ticket = client.submit("d695", 16)
        result = client.fetch_plan(ticket.job_id)   # a PlanResult
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro import obs
from repro.obs.logging import current_request_id, new_request_id
from repro.pipeline.config import RunConfig
from repro.pipeline.result import PlanResult
from repro.serve.errors import (
    BackpressureError,
    InvalidPlan,
    JobFailed,
    JobNotFound,
    ProtocolError,
    ServiceError,
    ShuttingDown,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
)
from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT

#: Socket timeout for ordinary (non-waiting) operations.
DEFAULT_OP_TIMEOUT_S = 30.0
#: Extra slack on the socket while the server performs a blocking wait.
WAIT_GRACE_S = 30.0


@dataclass(frozen=True)
class SubmitTicket:
    """What a submission returns: where the job is, and whether it
    coalesced onto an earlier identical request."""

    job_id: str
    state: str
    deduped: bool
    #: Correlation id of the job's trace.  For a deduped submission
    #: this is the *original* submission's id -- the trace this one
    #: joined -- not the id this client sent.
    request_id: str = ""


class ServiceClient:
    """One connection to a planning service (context manager)."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout_s: float = DEFAULT_OP_TIMEOUT_S,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: socket.socket | None = None
        self._reader: Any = None

    # ------------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._sock = sock
            self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _request(
        self, message: Mapping[str, Any], *, timeout_s: float | None = None
    ) -> dict[str, Any]:
        self.connect()
        assert self._sock is not None
        self._sock.settimeout(
            timeout_s if timeout_s is not None else self.timeout_s
        )
        self._sock.sendall(encode_message(dict(message, v=PROTOCOL_VERSION)))
        line = self._reader.readline()
        if not line:
            self.close()
            raise ServiceError("connection closed by server")
        response = decode_message(line)
        if response.get("ok"):
            return response
        raise self._error_from(response)

    @staticmethod
    def _error_from(response: Mapping[str, Any]) -> ServiceError:
        code = str(response.get("error", "service-error"))
        message = str(response.get("message", code))
        if code == "backpressure":
            return BackpressureError(
                message, retry_after=float(response.get("retry_after", 1.0))
            )
        mapped: dict[str, type[ServiceError]] = {
            "bad-request": ProtocolError,
            "not-found": JobNotFound,
            "shutting-down": ShuttingDown,
            "invalid-plan": InvalidPlan,
        }
        if code in mapped:
            return mapped[code](message)
        error = JobFailed(message)
        error.code = code  # preserve the wire code (timeout, cancelled, ...)
        return error

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def designs(self) -> list[dict[str, Any]]:
        return list(self._request({"op": "designs"})["designs"])

    def submit(
        self,
        design: str,
        width: int,
        config: RunConfig | None = None,
        *,
        priority: int = 0,
        timeout_s: float | None = None,
        fault: Mapping[str, Any] | None = None,
        request_id: str | None = None,
    ) -> SubmitTicket:
        """Submit one plan request.

        ``request_id`` correlates the submission across the client,
        service, and worker (logs and spans all carry it).  When not
        given, the contextvar-bound id is used if one is set
        (:func:`repro.obs.logging.bind_request_id`), else a fresh id
        is minted per submission.
        """
        rid = request_id or current_request_id() or new_request_id()
        message: dict[str, Any] = {
            "op": "submit",
            "design": design,
            "width": int(width),
            "config": (config or RunConfig()).to_dict(),
            "priority": int(priority),
            "request_id": rid,
        }
        if timeout_s is not None:
            message["timeout_s"] = float(timeout_s)
        if fault:
            message["fault"] = dict(fault)
        with obs.span(
            "client/submit", design=design, width=int(width), request_id=rid
        ):
            response = self._request(message)
        return SubmitTicket(
            job_id=str(response["job_id"]),
            state=str(response["state"]),
            deduped=bool(response["deduped"]),
            request_id=str(response.get("request_id", rid)),
        )

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request({"op": "status", "job_id": job_id})

    def stats(self) -> dict[str, Any]:
        return dict(self._request({"op": "stats"})["stats"])

    def metrics(self) -> str:
        """The service's OpenMetrics exposition text."""
        return str(self._request({"op": "metrics"})["metrics"])

    def health(self) -> dict[str, Any]:
        """The service's liveness / rolling-latency / error-budget view."""
        return dict(self._request({"op": "health"})["health"])

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request({"op": "cancel", "job_id": job_id})

    def result(
        self,
        job_id: str,
        *,
        wait: bool = True,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """The raw result-export dict of a finished job.

        ``wait=True`` blocks server-side until the job settles; failed,
        cancelled, or timed-out jobs raise with the job's error code.
        """
        message: dict[str, Any] = {
            "op": "result",
            "job_id": job_id,
            "wait": wait,
        }
        if timeout_s is not None:
            message["timeout_s"] = float(timeout_s)
        socket_budget = (
            timeout_s + WAIT_GRACE_S if timeout_s is not None else None
        )
        if wait and socket_budget is None:
            socket_budget = 3600.0  # an unbounded wait still needs an end
        with obs.span("client/result", job=job_id, wait=wait):
            response = self._request(message, timeout_s=socket_budget)
        return dict(response["result"])

    def fetch_plan(
        self,
        job_id: str,
        *,
        wait: bool = True,
        timeout_s: float | None = None,
    ) -> PlanResult:
        """A finished job's result as a :class:`PlanResult`."""
        from repro.reporting.export import result_from_dict

        return result_from_dict(
            self.result(job_id, wait=wait, timeout_s=timeout_s)
        )

    def plan(
        self,
        design: str,
        width: int,
        config: RunConfig | None = None,
        *,
        priority: int = 0,
        timeout_s: float | None = None,
    ) -> PlanResult:
        """Submit and await one plan: the one-call remote counterpart
        of :func:`repro.pipeline.plan`."""
        ticket = self.submit(
            design, width, config, priority=priority, timeout_s=timeout_s
        )
        return self.fetch_plan(ticket.job_id, timeout_s=timeout_s)

    def shutdown(self, *, drain: bool = True) -> dict[str, Any]:
        return self._request({"op": "shutdown", "drain": drain})


def connect_with_retry(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    deadline_s: float = 10.0,
    interval_s: float = 0.05,
) -> ServiceClient:
    """Connect to a service that may still be binding its socket."""
    deadline = time.monotonic() + deadline_s
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            return ServiceClient(host, port).connect()
        except OSError as error:
            last_error = error
            time.sleep(interval_s)
    raise ServiceError(
        f"no service at {host}:{port} within {deadline_s:.3g} s "
        f"({last_error!r})"
    )
