"""Always-on service telemetry: registry, rolling windows, health view.

The global :mod:`repro.obs` context is opt-in and process-wide -- right
for one-shot CLI runs, wrong as the *only* instrument store for a
long-lived service whose ``metrics``/``health`` ops must answer even
when nobody asked for tracing.  :class:`ServiceTelemetry` is the
service-owned middle layer:

* a private :class:`~repro.obs.metrics.MetricsRegistry` (counters,
  queue-depth gauge, latency histograms on the
  :data:`~repro.obs.metrics.LATENCY_BUCKETS` preset) that exists for
  the lifetime of the service, independent of the global switchboard;
* a :class:`~repro.obs.window.WindowRegistry` of sliding windows
  giving the rolling p50/p95/p99 the ``health`` op reports;
* the OpenMetrics rendering for the ``metrics`` op.

``enabled=False`` (``repro-soc serve --no-telemetry``) turns every
method into an early-out no-op, so the overhead gate in
``benchmarks/test_bench_serve.py`` can hold the disabled service to
its pre-telemetry throughput.  The authoritative plain-dict counters in
:class:`~repro.serve.service.PlanningService` are *not* part of this
layer -- the ``stats`` op stays correct with telemetry off, exactly as
it stayed correct with observability off before this layer existed.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.obs.expo import render_openmetrics
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.window import WindowRegistry

#: Rolling horizon of the health windows, seconds.
HEALTH_WINDOW_S = 60.0

#: Window names (also the health-op keys).
WINDOW_EXEC = "job_seconds"
WINDOW_TURNAROUND = "turnaround_seconds"

#: ``# HELP`` strings for the exposition (keyed by registry name).
METRIC_HELP: dict[str, str] = {
    "serve.jobs_submitted": "Plan requests accepted into the queue",
    "serve.jobs_completed": "Jobs finished with a verified plan",
    "serve.jobs_failed": "Jobs finished in a failure state",
    "serve.jobs_deduped": "Submissions coalesced onto in-flight jobs",
    "serve.jobs_rejected": "Submissions rejected with backpressure",
    "serve.jobs_retried": "Attempt re-executions after worker crashes",
    "serve.jobs_timed_out": "Jobs terminated at their deadline",
    "serve.jobs_cancelled": "Jobs cancelled before completion",
    "serve.jobs_restored": "Jobs restored from persisted queue state",
    "serve.queue_depth": "Jobs queued and waiting for a worker slot",
    "serve.requests": "Protocol requests handled, by outcome",
    "serve.job_seconds": "Worker execution latency per attempt chain",
    "serve.turnaround_seconds": "Submit-to-finish latency per job",
}


class ServiceTelemetry:
    """One service instance's live instrument set (cheap when off)."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.windows = WindowRegistry()
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Recording (every path early-outs when disabled).
    # ------------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.registry.inc(f"serve.{name}", amount)

    def set_queue_depth(self, depth: int) -> None:
        if self.enabled:
            self.registry.set_gauge("serve.queue_depth", float(depth))

    def observe_execution(self, seconds: float) -> None:
        """One job's worker execution latency (attempt chain wall)."""
        if not self.enabled:
            return
        self.registry.observe(
            f"serve.{WINDOW_EXEC}", seconds, LATENCY_BUCKETS
        )
        self.windows.window(WINDOW_EXEC, HEALTH_WINDOW_S).observe(seconds)

    def observe_turnaround(self, seconds: float) -> None:
        """One job's submit-to-terminal latency (queueing included)."""
        if not self.enabled:
            return
        self.registry.observe(
            f"serve.{WINDOW_TURNAROUND}", seconds, LATENCY_BUCKETS
        )
        self.windows.window(WINDOW_TURNAROUND, HEALTH_WINDOW_S).observe(
            seconds
        )

    def merge_worker_metrics(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker subprocess's registry snapshot in."""
        if self.enabled and snapshot:
            self.registry.merge(snapshot)

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------

    def openmetrics(self) -> str:
        """The ``metrics`` op payload (empty-registry safe)."""
        return render_openmetrics(
            self.registry.snapshot(), prefix="repro", help_text=METRIC_HELP
        )

    def rolling(self) -> dict[str, dict[str, float]]:
        """Rolling latency summaries, keyed by window name."""
        return self.windows.summaries()


def health_view(
    *,
    telemetry: ServiceTelemetry,
    counters: Mapping[str, int],
    queue_depth: int,
    queue_capacity: int,
    running: int,
    workers: int,
    accepting: bool,
    dispatcher_alive: bool,
    uptime_s: float,
) -> dict[str, Any]:
    """The ``health`` op payload: liveness + rolling load picture.

    ``status`` is ``"ok"`` while the service accepts work and its
    dispatcher is alive, ``"draining"`` once shutdown began, and
    ``"degraded"`` when the dispatcher died while the service still
    claims to accept -- the one state that should page somebody.
    """
    if accepting and dispatcher_alive:
        status = "ok"
    elif not accepting:
        status = "draining"
    else:
        status = "degraded"
    submitted = int(counters.get("jobs_submitted", 0))
    failures = (
        int(counters.get("jobs_failed", 0))
        + int(counters.get("jobs_cancelled", 0))
    )
    return {
        "status": status,
        "uptime_s": round(uptime_s, 3),
        "accepting": accepting,
        "dispatcher_alive": dispatcher_alive,
        "telemetry": telemetry.enabled,
        "queue_depth": queue_depth,
        "queue_capacity": queue_capacity,
        "running": running,
        "workers": workers,
        "window_s": HEALTH_WINDOW_S,
        "rolling": telemetry.rolling() if telemetry.enabled else {},
        "error_budget": {
            "submitted": submitted,
            "completed": int(counters.get("jobs_completed", 0)),
            "failed": int(counters.get("jobs_failed", 0)),
            "cancelled": int(counters.get("jobs_cancelled", 0)),
            "timed_out": int(counters.get("jobs_timed_out", 0)),
            "rejected": int(counters.get("jobs_rejected", 0)),
            "invalid_plan": int(counters.get("jobs_invalid_plan", 0)),
            "failure_rate": round(failures / submitted, 6)
            if submitted
            else 0.0,
        },
    }


__all__ = [
    "HEALTH_WINDOW_S",
    "METRIC_HELP",
    "ServiceTelemetry",
    "health_view",
]
