"""Exception taxonomy of the planning service.

Every error that can cross the wire has a stable ``code`` string -- the
protocol maps exceptions to ``{"ok": false, "error": code, ...}``
responses and the client maps them back, so a caller catches the same
exception type whether the service runs in-process or behind a socket.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for service-level failures."""

    code = "service-error"

    def to_payload(self) -> dict[str, object]:
        """The wire form of this error (merged into the response)."""
        return {"ok": False, "error": self.code, "message": str(self)}


class ProtocolError(ServiceError):
    """A request the server cannot parse or does not understand."""

    code = "bad-request"


class BackpressureError(ServiceError):
    """The job queue is full; retry after the suggested delay.

    This is the explicit backpressure contract: a full service *rejects*
    new work immediately instead of buffering without bound or hanging
    the client.  ``retry_after`` is the server's load-based estimate of
    when a slot is likely to be free (seconds).
    """

    code = "backpressure"

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)

    def to_payload(self) -> dict[str, object]:
        payload = super().to_payload()
        payload["retry_after"] = self.retry_after
        return payload


class JobNotFound(ServiceError):
    """No job with the requested id (never existed, or evicted)."""

    code = "not-found"


class ShuttingDown(ServiceError):
    """The service is draining and no longer accepts submissions."""

    code = "shutting-down"


class JobFailed(ServiceError):
    """Raised client-side when a fetched job finished in FAILED state."""

    code = "job-failed"


# ---------------------------------------------------------------------------
# Worker-side failures (internal: the service turns these into job
# state transitions, they never cross the wire as exceptions).
# ---------------------------------------------------------------------------


class WorkerCrashed(ServiceError):
    """The worker process died without delivering a result.

    The one *retryable* failure: a crash says nothing about the request
    (OOM kill, SIGKILL, node reboot), so the service re-runs the job
    with exponential backoff up to its retry budget.
    """

    code = "worker-crashed"

    def __init__(self, message: str, exitcode: int | None = None) -> None:
        super().__init__(message)
        self.exitcode = exitcode


class WorkerError(ServiceError):
    """The worker ran and reported a deterministic error.

    Not retried: the same request would fail the same way (unknown
    design name, invalid config, planner invariant violation).
    """

    code = "worker-error"


class InvalidPlan(WorkerError):
    """The planner produced a result that failed post-plan verification.

    Every plan the service computes is re-checked by the independent
    invariant checker (:mod:`repro.verify`) before the reply is stored;
    a violation means a planner defect, so the job fails with this
    dedicated code rather than shipping a wrong plan.  Deterministic,
    hence never retried.
    """

    code = "invalid-plan"


class JobTimeout(ServiceError):
    """The job exceeded its deadline and its worker was terminated."""

    code = "timeout"


class JobCancelled(ServiceError):
    """The job was cancelled before completing."""

    code = "cancelled"
