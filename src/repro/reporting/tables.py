"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Compact float formatting: integers stay integral."""
    if value == float("inf"):
        return "inf"
    if abs(value - round(value)) < 10 ** (-digits - 2):
        return str(int(round(value)))
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned; the header
    row is separated by a rule.  Cells may be any object; floats go
    through :func:`format_float`.
    """
    def cell_text(cell: object) -> str:
        if isinstance(cell, float):
            return format_float(cell)
        return str(cell)

    grid = [[cell_text(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in grid:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cell: str, width: int, original: object) -> str:
        if isinstance(original, (int, float)):
            return cell.rjust(width)
        return cell.ljust(width)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row, original in zip(grid, rows):
        lines.append(
            "  ".join(
                align(cell, width, orig)
                for cell, width, orig in zip(row, widths, original)
            )
        )
    return "\n".join(lines)
