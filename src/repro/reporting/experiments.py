"""Experiment drivers: one function per figure/table of the paper.

These are shared by the benchmark harness (``benchmarks/``), the example
scripts, and EXPERIMENTS.md generation, so the numbers in all three come
from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer import OptimizeResult
from repro.explore.dse import CoreAnalysis, analysis_for
from repro.pipeline import RunConfig, plan
from repro.reporting.tables import format_table
from repro.soc.industrial import industrial_core, industrial_system, load_design
from repro.soc.soc import Soc


def _run_config(
    config: RunConfig | None,
    jobs: int | None,
    cache_dir: str | None,
    use_cache: bool | None,
) -> RunConfig:
    """Fold the legacy per-driver perf kwargs into one :class:`RunConfig`.

    Every driver accepts either a full ``config`` or the historical
    ``jobs``/``cache_dir``/``use_cache`` trio; explicit kwargs win over
    the config's fields so old call sites keep their meaning.
    """
    if config is None:
        config = RunConfig()
    changes: dict[str, object] = {}
    if jobs is not None:
        changes["jobs"] = jobs
    if cache_dir is not None:
        changes["cache_dir"] = cache_dir
    if use_cache is not None:
        changes["use_cache"] = use_cache
    return config.replace(**changes) if changes else config

# ---------------------------------------------------------------------------
# Figure 2: test time vs wrapper-chain count at fixed code width.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Data:
    core_name: str
    code_width: int
    m_values: tuple[int, ...]
    test_times: tuple[int, ...]

    @property
    def tau_min(self) -> int:
        return min(self.test_times)

    @property
    def tau_max(self) -> int:
        return max(self.test_times)

    @property
    def argmin_m(self) -> int:
        best = min(range(len(self.m_values)), key=lambda i: self.test_times[i])
        return self.m_values[best]

    @property
    def relative_spread(self) -> float:
        """The paper's annotated ``(tau_max - tau_min) / tau_max``."""
        return (self.tau_max - self.tau_min) / self.tau_max

    @property
    def is_monotonic(self) -> bool:
        return all(
            b <= a for a, b in zip(self.test_times, self.test_times[1:])
        )


def figure2_data(
    core_name: str = "ckt-7",
    code_width: int = 10,
    *,
    grid: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    config: RunConfig | None = None,
) -> Figure2Data:
    """tau_c versus m for every m whose code width is ``code_width``.

    The paper plots ckt-7 at w = 10, i.e. m in [128, 255], and finds the
    minimum at m = 253 rather than at the maximum 255.
    """
    cfg = _run_config(config, jobs, cache_dir, use_cache)
    core = industrial_core(core_name)
    analysis = cfg.analyses(
        [core], grid=grid or 256, max_tam_width=code_width
    )[core.name]
    points = analysis.sweep_code_width(code_width)
    if not points:
        raise ValueError(f"{core_name} has no feasible m at code width {code_width}")
    return Figure2Data(
        core_name=core_name,
        code_width=code_width,
        m_values=tuple(p.m for p in points),
        test_times=tuple(p.test_time for p in points),
    )


def format_figure2(data: Figure2Data, *, every: int = 8) -> str:
    rows = [
        (m, t)
        for i, (m, t) in enumerate(zip(data.m_values, data.test_times))
        if i % every == 0 or m == data.argmin_m
    ]
    table = format_table(
        ["m (wrapper chains)", "test time (cycles)"],
        rows,
        title=(
            f"Figure 2 -- {data.core_name}, w={data.code_width}: "
            f"min at m={data.argmin_m}, spread "
            f"{100 * data.relative_spread:.1f}%"
        ),
    )
    return table


# ---------------------------------------------------------------------------
# Figure 3: lowest test time per TAM width.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure3Data:
    core_name: str
    code_widths: tuple[int, ...]
    test_times: tuple[int, ...]
    best_m: tuple[int, ...]

    def upticks(self) -> list[int]:
        """Code widths where widening the TAM *increases* the time."""
        return [
            self.code_widths[i]
            for i in range(len(self.test_times) - 1)
            if self.test_times[i] < self.test_times[i + 1]
        ]


def figure3_data(
    core_name: str = "ckt-7",
    code_widths: range = range(6, 15),
    *,
    grid: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    config: RunConfig | None = None,
) -> Figure3Data:
    """Minimum tau_c over m, for each exact decompressor input width w."""
    cfg = _run_config(config, jobs, cache_dir, use_cache)
    core = industrial_core(core_name)
    analysis = cfg.analyses(
        [core], grid=grid or 128, max_tam_width=max(code_widths)
    )[core.name]
    widths: list[int] = []
    times: list[int] = []
    best_ms: list[int] = []
    for w in code_widths:
        best = analysis.best_for_code_width(w)
        if best is None:
            continue
        widths.append(w)
        times.append(best.test_time)
        best_ms.append(best.m)
    return Figure3Data(
        core_name=core_name,
        code_widths=tuple(widths),
        test_times=tuple(times),
        best_m=tuple(best_ms),
    )


def format_figure3(data: Figure3Data) -> str:
    rows = list(zip(data.code_widths, data.best_m, data.test_times))
    upticks = data.upticks()
    note = (
        f"non-monotonic at w in {upticks}" if upticks else "monotonic over range"
    )
    return format_table(
        ["w (TAM wires)", "best m", "test time (cycles)"],
        rows,
        title=f"Figure 3 -- {data.core_name}: lowest test time per TAM width ({note})",
    )


# ---------------------------------------------------------------------------
# Figure 4: the three architecture alternatives.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure4Data:
    soc_name: str
    width_budget: int
    no_tdc: OptimizeResult
    per_tam: OptimizeResult
    per_core: OptimizeResult

    @property
    def per_core_wires(self) -> int:
        return self.per_core.architecture.total_tam_width

    @property
    def per_tam_wires(self) -> int:
        """Expanded on-chip wires behind the per-TAM decompressors."""
        return self.per_tam.architecture.total_tam_width


def figure4_data(
    soc_name: str = "System1",
    width: int = 31,
    *,
    max_tams: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    config: RunConfig | None = None,
) -> Figure4Data:
    """Plan the same SOC three ways, as in the paper's Figure 4."""
    cfg = _run_config(config, jobs, cache_dir, use_cache)
    if max_tams is not None:
        cfg = cfg.replace(max_tams=max_tams)
    soc = load_design(soc_name)
    no_tdc = plan(soc, width, cfg.replace(compression="none"))
    per_core = plan(soc, width, cfg.replace(compression="per-core"))
    per_tam = plan(soc, width, cfg.replace(compression="per-tam"))
    return Figure4Data(
        soc_name=soc_name,
        width_budget=width,
        no_tdc=no_tdc,
        per_tam=per_tam,
        per_core=per_core,
    )


def format_figure4(data: Figure4Data) -> str:
    rows = [
        (
            "(a) no TDC",
            data.no_tdc.test_time,
            data.no_tdc.architecture.total_tam_width,
            " ".join(str(w) for w in data.no_tdc.tam_widths),
        ),
        (
            "(b) decompressor per TAM",
            data.per_tam.test_time,
            data.per_tam_wires,
            " ".join(str(w) for w in data.per_tam.tam_widths),
        ),
        (
            "(c) decompressor per core",
            data.per_core.test_time,
            data.per_core_wires,
            " ".join(str(w) for w in data.per_core.tam_widths),
        ),
    ]
    return format_table(
        ["architecture", "test time", "on-chip TAM wires", "TAM widths"],
        rows,
        title=(
            f"Figure 4 -- {data.soc_name}, width budget "
            f"{data.width_budget}: per-core matches per-TAM test time with "
            "far fewer on-chip wires"
        ),
    )


# ---------------------------------------------------------------------------
# Tables 1 and 2: test time under ATE-channel / TAM-width constraints.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    design: str
    ate_channels: int
    proposed_time: int
    soc_level_time: int | None

    @property
    def ratio(self) -> float | None:
        """proposed / soc-level (the tau_c / tau_[18] analogue)."""
        if not self.soc_level_time:
            return None
        return self.proposed_time / self.soc_level_time


@dataclass(frozen=True)
class Table2Row:
    design: str
    tam_width: int
    proposed_time: int
    soc_level_time: int | None
    soc_level_channels: int | None

    @property
    def ratio(self) -> float | None:
        if not self.soc_level_time:
            return None
        return self.proposed_time / self.soc_level_time


def table1_rows(
    designs: tuple[str, ...] = ("d695", "d2758"),
    channels: tuple[int, ...] = (16, 24, 32),
    *,
    include_soc_level: bool = True,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    config: RunConfig | None = None,
) -> list[Table1Row]:
    """Table 1: minimize test time at an ATE-channel budget.

    With per-core decompression ATE channels equal TAM wires, so the
    proposed approach is the standard pipeline at ``W = W_ATE``.  The
    comparator is the SOC-level ("virtual TAM") decompressor, which is
    built for exactly this constraint.
    """
    from repro.core.soclevel import optimize_soc_level_decompressor

    cfg = _run_config(config, jobs, cache_dir, use_cache).replace(
        compression="per-core"
    )
    rows = []
    for design in designs:
        soc = load_design(design)
        for w_ate in channels:
            proposed = plan(soc, w_ate, cfg)
            soc_level_time = None
            if include_soc_level:
                soc_level = optimize_soc_level_decompressor(soc, w_ate)
                soc_level_time = soc_level.test_time
            rows.append(
                Table1Row(
                    design=design,
                    ate_channels=w_ate,
                    proposed_time=proposed.test_time,
                    soc_level_time=soc_level_time,
                )
            )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    grid = [
        (
            r.design,
            r.ate_channels,
            r.proposed_time,
            r.soc_level_time if r.soc_level_time is not None else "n.a.",
            r.ratio if r.ratio is not None else "n.a.",
        )
        for r in rows
    ]
    return format_table(
        ["design", "W_ATE", "tau proposed", "tau soc-level", "ratio"],
        grid,
        title="Table 1 -- test time at an ATE-channel constraint",
    )


def table2_rows(
    designs: tuple[str, ...] = ("d695",),
    widths: tuple[int, ...] = (16, 24, 32, 48, 64),
    *,
    include_soc_level: bool = True,
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    config: RunConfig | None = None,
) -> list[Table2Row]:
    """Table 2: minimize test time at a TAM-wire budget.

    The SOC-level comparator must fit its *internal* (expanded) TAM in
    the same wire budget, which forces a narrow virtual TAM -- the
    regime where the paper says it loses to per-core decompression.
    """
    from repro.core.soclevel import optimize_soc_level_decompressor

    cfg = _run_config(config, jobs, cache_dir, use_cache).replace(
        compression="per-core"
    )
    rows = []
    for design in designs:
        soc = load_design(design)
        for w_tam in widths:
            proposed = plan(soc, w_tam, cfg)
            soc_time = None
            soc_channels = None
            if include_soc_level:
                from repro.compression.selective import code_parameters

                _, code_width = code_parameters(w_tam)
                soc_level = optimize_soc_level_decompressor(
                    soc, code_width, internal_width=w_tam
                )
                soc_time = soc_level.test_time
                soc_channels = code_width
            rows.append(
                Table2Row(
                    design=design,
                    tam_width=w_tam,
                    proposed_time=proposed.test_time,
                    soc_level_time=soc_time,
                    soc_level_channels=soc_channels,
                )
            )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    grid = [
        (
            r.design,
            r.tam_width,
            r.proposed_time,
            r.soc_level_time if r.soc_level_time is not None else "n.a.",
            r.ratio if r.ratio is not None else "n.a.",
        )
        for r in rows
    ]
    return format_table(
        ["design", "W_TAM", "tau proposed", "tau soc-level", "ratio"],
        grid,
        title="Table 2 -- test time at a TAM-width constraint",
    )


# ---------------------------------------------------------------------------
# Table 3: with/without TDC at several TAM widths.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Row:
    design: str
    gates: int
    initial_volume_bits: int
    tam_width: int
    time_no_tdc: int
    volume_no_tdc: int
    cpu_no_tdc: float
    time_tdc: int
    volume_tdc: int
    cpu_tdc: float

    @property
    def time_reduction(self) -> float:
        """tau_nc / tau_c (Table 3's "time reduction factor")."""
        return self.time_no_tdc / self.time_tdc if self.time_tdc else float("inf")

    @property
    def volume_reduction_vs_initial(self) -> float:
        """V_i / V_c."""
        return (
            self.initial_volume_bits / self.volume_tdc
            if self.volume_tdc
            else float("inf")
        )

    @property
    def volume_reduction(self) -> float:
        """V_nc / V_c."""
        return (
            self.volume_no_tdc / self.volume_tdc if self.volume_tdc else float("inf")
        )


def table3_rows(
    designs: tuple[str, ...] = (
        "d695",
        "System1",
        "System2",
        "System3",
        "System4",
    ),
    widths: tuple[int, ...] = (16, 32, 48, 64),
    *,
    compression: str = "per-core",
    jobs: int | None = None,
    cache_dir: str | None = None,
    use_cache: bool | None = None,
    config: RunConfig | None = None,
) -> list[Table3Row]:
    """Table 3: the paper's headline with-vs-without-TDC comparison."""
    cfg = _run_config(config, jobs, cache_dir, use_cache)
    rows = []
    for design in designs:
        soc = load_design(design)
        for width in widths:
            plain = plan(soc, width, cfg.replace(compression="none"))
            packed = plan(soc, width, cfg.replace(compression=compression))
            rows.append(
                Table3Row(
                    design=design,
                    gates=soc.gates,
                    initial_volume_bits=soc.initial_test_data_volume,
                    tam_width=width,
                    time_no_tdc=plain.test_time,
                    volume_no_tdc=plain.test_data_volume,
                    cpu_no_tdc=plain.cpu_seconds,
                    time_tdc=packed.test_time,
                    volume_tdc=packed.test_data_volume,
                    cpu_tdc=packed.cpu_seconds,
                )
            )
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    grid = []
    for r in rows:
        grid.append(
            (
                r.design,
                r.tam_width,
                round(r.time_no_tdc / 1e3),
                round(r.volume_no_tdc / 1e6, 2),
                round(r.cpu_no_tdc, 2),
                round(r.time_tdc / 1e3),
                round(r.volume_tdc / 1e6, 2),
                round(r.cpu_tdc, 2),
                round(r.time_reduction, 2),
                round(r.volume_reduction_vs_initial, 2),
                round(r.volume_reduction, 2),
            )
        )
    industrial = [r for r in rows if r.design.startswith("System")]
    avg_all = sum(r.time_reduction for r in rows) / len(rows) if rows else 0.0
    avg_ind = (
        sum(r.time_reduction for r in industrial) / len(industrial)
        if industrial
        else 0.0
    )
    table = format_table(
        [
            "design",
            "W_TAM",
            "tau_nc (kcyc)",
            "V_nc (Mbit)",
            "cpu_nc (s)",
            "tau_c (kcyc)",
            "V_c (Mbit)",
            "cpu_c (s)",
            "tau_nc/tau_c",
            "V_i/V_c",
            "V_nc/V_c",
        ],
        grid,
        title="Table 3 -- test time / volume with and without TDC",
    )
    return (
        table
        + f"\naverage time reduction, all designs: {avg_all:.2f}x"
        + f"\naverage time reduction, industrial designs: {avg_ind:.2f}x"
    )
