"""Schedule profiling: TAM utilization and power-over-time rendering.

Complements the Gantt view with the two numbers planners look at
first: how busy each TAM bus actually is (idle wires are wasted
routing), and what the SOC's power envelope looks like over the test
session (the constraint the power-aware scheduler trades against).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.architecture import TestArchitecture


@dataclass(frozen=True)
class TamUtilization:
    """Busy statistics for one TAM."""

    tam_index: int
    width: int
    busy_cycles: int
    total_cycles: int

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def wire_cycles_wasted(self) -> int:
        """Idle cycles times width: the routing investment left unused."""
        return (self.total_cycles - self.busy_cycles) * self.width


def tam_utilization(architecture: TestArchitecture) -> list[TamUtilization]:
    """Per-TAM busy fraction over the SOC test session."""
    total = architecture.test_time
    stats = []
    for tam in architecture.tams:
        busy = sum(
            slot.end - slot.start
            for slot in architecture.scheduled
            if slot.tam_index == tam.index
        )
        stats.append(
            TamUtilization(
                tam_index=tam.index,
                width=tam.width,
                busy_cycles=busy,
                total_cycles=total,
            )
        )
    return stats


def render_utilization(architecture: TestArchitecture) -> str:
    """Text report of per-TAM utilization."""
    stats = tam_utilization(architecture)
    lines = ["TAM utilization:"]
    for s in stats:
        bar = "#" * int(round(30 * s.utilization))
        lines.append(
            f"  TAM{s.tam_index} (w={s.width:>3}) "
            f"|{bar:<30}| {100 * s.utilization:5.1f}% busy, "
            f"{s.wire_cycles_wasted:,} wire-cycles idle"
        )
    total_wire_cycles = sum(
        s.total_cycles * s.width for s in stats
    )
    wasted = sum(s.wire_cycles_wasted for s in stats)
    if total_wire_cycles:
        lines.append(
            f"  overall: {100 * (1 - wasted / total_wire_cycles):.1f}% of "
            f"wire-cycles carry test data"
        )
    return "\n".join(lines)


def power_profile(
    architecture: TestArchitecture, power_of: Mapping[str, float]
) -> list[tuple[int, float]]:
    """Step function of SOC power over time: (time, level) breakpoints.

    The returned list starts at time 0 and each entry gives the level
    from that time until the next breakpoint.
    """
    events: dict[int, float] = {0: 0.0}
    for slot in architecture.scheduled:
        p = float(power_of.get(slot.config.core_name, 0.0))
        events[slot.start] = events.get(slot.start, 0.0) + p
        events[slot.end] = events.get(slot.end, 0.0) - p
    level = 0.0
    profile: list[tuple[int, float]] = []
    for t in sorted(events):
        level += events[t]
        profile.append((t, level))
    return profile


def peak_power(profile: Sequence[tuple[int, float]]) -> float:
    return max((level for _, level in profile), default=0.0)


def render_power_profile(
    architecture: TestArchitecture,
    power_of: Mapping[str, float],
    *,
    width: int = 64,
    height: int = 8,
    budget: float | None = None,
) -> str:
    """ASCII chart of the SOC power envelope over the session."""
    total = architecture.test_time
    if total == 0:
        return "(empty schedule)"
    profile = power_profile(architecture, power_of)
    top = max(peak_power(profile), budget or 0.0) or 1.0

    # Sample the step function into `width` columns (max within column).
    columns = [0.0] * width
    for (t0, level), (t1, _) in zip(profile, profile[1:] + [(total, 0.0)]):
        lo = min(width - 1, int(t0 / total * width))
        hi = min(width, max(lo + 1, int(-(-t1 * width // total))))
        for col in range(lo, hi):
            columns[col] = max(columns[col], level)

    rows = []
    for r in range(height, 0, -1):
        threshold = top * (r - 0.5) / height
        line = "".join("#" if c >= threshold else " " for c in columns)
        marker = ""
        if budget is not None and abs(threshold - budget) <= top / (2 * height):
            marker = "  <- budget"
        rows.append(f"  |{line}|{marker}")
    rows.append(f"  peak {peak_power(profile):.1f} over {total:,} cycles"
                + (f", budget {budget:.1f}" if budget is not None else ""))
    return "power profile:\n" + "\n".join(rows)
