"""JSON export/import of planned architectures and results.

A planned :class:`~repro.core.architecture.TestArchitecture` is the
hand-off artifact to downstream DFT tooling (wrapper insertion, TAM
routing, ATE program generation), so it needs a stable serialized form.
The schema is versioned; :func:`architecture_from_json` refuses schemas
it does not understand.

A full :class:`~repro.pipeline.result.PlanResult` (architecture plus
run provenance: compression mode, search statistics, constraint
bookkeeping, per-stage timings) round-trips losslessly through
:func:`result_to_json` / :func:`result_from_json` -- ``load(dump(r))``
compares equal to ``r``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.pipeline.result import OptimizeResult, PlanResult

SCHEMA_VERSION = 1


def architecture_to_dict(
    architecture: TestArchitecture, *, sort_schedule: bool = True
) -> dict[str, Any]:
    """Serialize an architecture to plain JSON-ready data.

    ``sort_schedule`` orders the schedule by (TAM, start) for human
    diffing -- the default for standalone exports.  Pass ``False`` to
    keep the scheduler's own placement order, which the lossless
    :func:`result_to_dict` round trip requires
    (:class:`TestArchitecture` equality is order-sensitive).
    """
    scheduled: Any = architecture.scheduled
    if sort_schedule:
        scheduled = sorted(scheduled, key=lambda s: (s.tam_index, s.start))
    return {
        "schema": SCHEMA_VERSION,
        "soc": architecture.soc_name,
        "placement": architecture.placement.value,
        "ate_channels": architecture.ate_channels,
        "test_time": architecture.test_time,
        "test_data_volume": architecture.test_data_volume,
        "tams": [
            {"index": t.index, "width": t.width} for t in architecture.tams
        ],
        "schedule": [
            {
                "core": s.config.core_name,
                "tam": s.tam_index,
                "start": s.start,
                "end": s.end,
                "compressed": s.config.uses_compression,
                "technique": s.config.technique,
                "wrapper_chains": s.config.wrapper_chains,
                "code_width": s.config.code_width,
                "test_time": s.config.test_time,
                "volume": s.config.volume,
            }
            for s in scheduled
        ],
    }


def architecture_to_json(architecture: TestArchitecture, *, indent: int = 2) -> str:
    return json.dumps(architecture_to_dict(architecture), indent=indent)


def result_to_dict(result: PlanResult) -> dict[str, Any]:
    """Serialize a full plan result (architecture + provenance)."""
    payload = architecture_to_dict(result.architecture, sort_schedule=False)
    payload["optimizer"] = {
        "width_budget": result.width_budget,
        "compression": result.compression,
        "cpu_seconds": result.cpu_seconds,
        "partitions_evaluated": result.partitions_evaluated,
        "strategy": result.strategy,
        "peak_power": result.peak_power,
        "power_budget": result.power_budget,
        "tam_idle_cycles": result.tam_idle_cycles,
        "stage_timings": [
            {"stage": stage, "seconds": seconds}
            for stage, seconds in result.stage_timings
        ],
    }
    if result.report is not None:
        payload["report"] = result.report.to_dict()
    return payload


def result_to_json(result: PlanResult, *, indent: int = 2) -> str:
    return json.dumps(result_to_dict(result), indent=indent)


def architecture_from_dict(data: dict[str, Any]) -> TestArchitecture:
    """Rebuild an architecture from :func:`architecture_to_dict` data."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {schema!r} (this build reads {SCHEMA_VERSION})"
        )
    tams = tuple(Tam(index=t["index"], width=t["width"]) for t in data["tams"])
    scheduled = []
    for entry in data["schedule"]:
        config = CoreConfig(
            core_name=entry["core"],
            uses_compression=entry["compressed"],
            wrapper_chains=entry["wrapper_chains"],
            code_width=entry["code_width"],
            test_time=entry["test_time"],
            volume=entry["volume"],
            technique=entry.get("technique", "auto"),
        )
        scheduled.append(
            ScheduledCore(
                config=config,
                tam_index=entry["tam"],
                start=entry["start"],
                end=entry["end"],
            )
        )
    return TestArchitecture(
        soc_name=data["soc"],
        placement=DecompressorPlacement(data["placement"]),
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=data["ate_channels"],
    )


def architecture_from_json(text: str) -> TestArchitecture:
    return architecture_from_dict(json.loads(text))


def result_from_dict(data: dict[str, Any]) -> PlanResult:
    """Rebuild a :class:`PlanResult` from :func:`result_to_dict` data."""
    optimizer = data.get("optimizer")
    if optimizer is None:
        raise ValueError(
            "payload has no 'optimizer' section; use architecture_from_dict "
            "for bare architecture exports"
        )
    report = None
    if data.get("report") is not None:
        from repro.obs.report import RunReport

        report = RunReport.from_dict(data["report"])
    return PlanResult(
        soc_name=data["soc"],
        width_budget=optimizer["width_budget"],
        compression=optimizer["compression"],
        architecture=architecture_from_dict(data),
        cpu_seconds=optimizer["cpu_seconds"],
        partitions_evaluated=optimizer["partitions_evaluated"],
        strategy=optimizer["strategy"],
        peak_power=optimizer.get("peak_power", 0.0),
        power_budget=optimizer.get("power_budget"),
        tam_idle_cycles=optimizer.get("tam_idle_cycles", 0),
        stage_timings=tuple(
            (entry["stage"], entry["seconds"])
            for entry in optimizer.get("stage_timings", ())
        ),
        report=report,
    )


def result_from_json(text: str) -> PlanResult:
    return result_from_dict(json.loads(text))


#: Backward-compatible name (``PlanResult`` superseded it).
__all__ = [
    "SCHEMA_VERSION",
    "architecture_to_dict",
    "architecture_to_json",
    "architecture_from_dict",
    "architecture_from_json",
    "result_to_dict",
    "result_to_json",
    "result_from_dict",
    "result_from_json",
    "OptimizeResult",
    "PlanResult",
]
