"""JSON export/import of planned architectures.

A planned :class:`~repro.core.architecture.TestArchitecture` is the
hand-off artifact to downstream DFT tooling (wrapper insertion, TAM
routing, ATE program generation), so it needs a stable serialized form.
The schema is versioned; :func:`architecture_from_json` refuses schemas
it does not understand.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.architecture import (
    CoreConfig,
    DecompressorPlacement,
    ScheduledCore,
    Tam,
    TestArchitecture,
)
from repro.core.optimizer import OptimizeResult

SCHEMA_VERSION = 1


def architecture_to_dict(architecture: TestArchitecture) -> dict[str, Any]:
    """Serialize an architecture to plain JSON-ready data."""
    return {
        "schema": SCHEMA_VERSION,
        "soc": architecture.soc_name,
        "placement": architecture.placement.value,
        "ate_channels": architecture.ate_channels,
        "test_time": architecture.test_time,
        "test_data_volume": architecture.test_data_volume,
        "tams": [
            {"index": t.index, "width": t.width} for t in architecture.tams
        ],
        "schedule": [
            {
                "core": s.config.core_name,
                "tam": s.tam_index,
                "start": s.start,
                "end": s.end,
                "compressed": s.config.uses_compression,
                "technique": s.config.technique,
                "wrapper_chains": s.config.wrapper_chains,
                "code_width": s.config.code_width,
                "test_time": s.config.test_time,
                "volume": s.config.volume,
            }
            for s in sorted(
                architecture.scheduled, key=lambda s: (s.tam_index, s.start)
            )
        ],
    }


def architecture_to_json(architecture: TestArchitecture, *, indent: int = 2) -> str:
    return json.dumps(architecture_to_dict(architecture), indent=indent)


def result_to_dict(result: OptimizeResult) -> dict[str, Any]:
    """Serialize a full optimizer result (architecture + provenance)."""
    payload = architecture_to_dict(result.architecture)
    payload["optimizer"] = {
        "width_budget": result.width_budget,
        "compression": result.compression,
        "cpu_seconds": result.cpu_seconds,
        "partitions_evaluated": result.partitions_evaluated,
        "strategy": result.strategy,
    }
    return payload


def result_to_json(result: OptimizeResult, *, indent: int = 2) -> str:
    return json.dumps(result_to_dict(result), indent=indent)


def architecture_from_dict(data: dict[str, Any]) -> TestArchitecture:
    """Rebuild an architecture from :func:`architecture_to_dict` data."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {schema!r} (this build reads {SCHEMA_VERSION})"
        )
    tams = tuple(Tam(index=t["index"], width=t["width"]) for t in data["tams"])
    scheduled = []
    for entry in data["schedule"]:
        config = CoreConfig(
            core_name=entry["core"],
            uses_compression=entry["compressed"],
            wrapper_chains=entry["wrapper_chains"],
            code_width=entry["code_width"],
            test_time=entry["test_time"],
            volume=entry["volume"],
            technique=entry.get("technique", "auto"),
        )
        scheduled.append(
            ScheduledCore(
                config=config,
                tam_index=entry["tam"],
                start=entry["start"],
                end=entry["end"],
            )
        )
    return TestArchitecture(
        soc_name=data["soc"],
        placement=DecompressorPlacement(data["placement"]),
        tams=tams,
        scheduled=tuple(scheduled),
        ate_channels=data["ate_channels"],
    )


def architecture_from_json(text: str) -> TestArchitecture:
    return architecture_from_dict(json.loads(text))
