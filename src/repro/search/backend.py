"""Backend protocol, registry, and the ``run_search`` front door.

A *search backend* is a strategy for the paper's architecture step: it
explores (partition, assignment) states through a shared
:class:`~repro.search.evaluator.Evaluator` and returns the best
:class:`~repro.search.state.PartitionSearchResult` it found.  Backends
self-describe their hyperparameters (name -> type), which is what lets
``repro-soc plan --search-opt key=value`` coerce CLI strings safely and
reject typos with the full list of known knobs.

:func:`run_search` is the one entry point every consumer goes through
(``search_partitions`` façade, pipeline stages, the annealer shim): it
resolves the search space, auto-picks exhaustive vs. greedy exactly as
the pre-refactor dispatcher did, coerces options, and runs the backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, Sequence, runtime_checkable

from repro.core.scheduler import TimeFn
from repro.search.evaluator import Evaluator, PowerFn, VolumeFn
from repro.search.state import (
    PartitionSearchResult,
    SearchSpace,
    resolve_search_space,
)


@runtime_checkable
class SearchBackend(Protocol):
    """What a pluggable architecture-search strategy must provide."""

    #: Registry key; also the ``--strategy`` value and the ``strategy``
    #: string stamped on results.
    name: str

    #: Hyperparameter name -> type, used to coerce/validate options.
    hyperparameters: Mapping[str, type]

    def run(
        self, evaluator: Evaluator, space: SearchSpace, **options: Any
    ) -> PartitionSearchResult:
        """Search ``space``, evaluating through ``evaluator``."""
        ...


@dataclass(frozen=True)
class BackendConfig:
    """A backend choice plus raw (uncoerced) hyperparameter overrides.

    Hashable so it can ride on the frozen ``RunConfig``; options stay
    as sorted ``(key, value-string)`` pairs until the backend's
    declared types coerce them.
    """

    name: str = "auto"
    options: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def options_dict(self) -> dict[str, str]:
        return dict(self.options)

    @staticmethod
    def from_mapping(
        name: str, options: Mapping[str, Any] | None
    ) -> "BackendConfig":
        pairs = tuple(
            sorted((str(k), str(v)) for k, v in (options or {}).items())
        )
        return BackendConfig(name=name, options=pairs)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

_BACKENDS: dict[str, SearchBackend] = {}


def register_backend(backend: SearchBackend) -> None:
    """Register (or replace) a backend under ``backend.name``."""
    _BACKENDS[backend.name] = backend


def backend_names() -> list[str]:
    """Registered backend names, sorted (after loading built-ins)."""
    _ensure_builtin_backends()
    return sorted(_BACKENDS)


def get_backend(name: str) -> SearchBackend:
    _ensure_builtin_backends()
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown strategy {name!r} (available: "
            f"auto, {', '.join(sorted(_BACKENDS))})"
        )
    return backend


def _ensure_builtin_backends() -> None:
    # Importing the subpackage registers the built-in backends; lazy so
    # ``repro.search.backend`` itself stays import-cycle free.
    from repro.search import backends  # noqa: F401


# ----------------------------------------------------------------------
# Option coercion.
# ----------------------------------------------------------------------

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def coerce_options(
    backend: SearchBackend, options: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Coerce raw option values to the backend's declared types.

    Unknown keys raise with the backend's full knob list, so a CLI typo
    fails loudly instead of silently searching with defaults.
    """
    coerced: dict[str, Any] = {}
    for key, raw in (options or {}).items():
        typ = backend.hyperparameters.get(key)
        if typ is None:
            known = ", ".join(sorted(backend.hyperparameters)) or "none"
            raise ValueError(
                f"unknown option {key!r} for search backend "
                f"{backend.name!r} (known options: {known})"
            )
        coerced[key] = _coerce_one(key, raw, typ)
    return coerced


def _coerce_one(key: str, raw: Any, typ: type) -> Any:
    if typ is bool:
        if isinstance(raw, bool):
            return raw
        if isinstance(raw, str):
            low = raw.strip().lower()
            if low in _TRUE:
                return True
            if low in _FALSE:
                return False
        raise ValueError(f"option {key}={raw!r} is not a valid bool")
    if isinstance(raw, typ) and not isinstance(raw, bool):
        return raw
    try:
        return typ(raw)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"option {key}={raw!r} is not a valid {typ.__name__}"
        ) from exc


# ----------------------------------------------------------------------
# The front door.
# ----------------------------------------------------------------------


def run_search(
    core_names: Sequence[str],
    total_width: int,
    time_of: TimeFn,
    *,
    strategy: str = "auto",
    max_parts: int | None = None,
    min_width: int = 1,
    options: Mapping[str, Any] | None = None,
    volume_of: VolumeFn | None = None,
    power_of: PowerFn | None = None,
) -> PartitionSearchResult:
    """Resolve the space, pick the backend, and search.

    ``strategy="auto"`` keeps the historical rule: exhaustive while the
    partition count stays within ``AUTO_PARTITION_LIMIT``, greedy
    beyond it.  Every other name goes straight to the registry.
    """
    space = resolve_search_space(
        len(core_names), total_width, max_parts=max_parts, min_width=min_width
    )
    if strategy == "auto":
        from repro.core.partition import AUTO_PARTITION_LIMIT, count_partitions

        size = count_partitions(
            space.total_width, space.max_parts, space.min_width
        )
        strategy = "exhaustive" if size <= AUTO_PARTITION_LIMIT else "greedy"
    backend = get_backend(strategy)
    coerced = coerce_options(backend, options)
    evaluator = Evaluator(
        core_names, time_of, volume_of=volume_of, power_of=power_of
    )
    return backend.run(evaluator, space, **coerced)
