"""Persistent JSON study store for resumable population searches.

A *study* is the full restartable state of one evolutionary search:
the RNG state (NumPy bit-generator state, JSON-safe), the current
population with its fitness, the best state seen, the evaluation
count, and a per-generation history.  Saving after every generation
makes ``--resume`` exact: running 5 generations, saving, and resuming
for 5 more is bit-identical to running 10 straight (pinned by
``tests/test_search_evolutionary.py``).

The file is a single JSON document with ``kind: "search-study"`` and a
schema version, in the same spirit as the bench/report artifacts
validated by ``scripts/check_obs_artifacts.py``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.search.state import SearchSpace

STUDY_KIND = "search-study"
STUDY_SCHEMA = 1


@dataclass
class StudyMember:
    """One population member with its cached multi-objective fitness."""

    widths: list[int]
    assignment: list[int]
    fitness: list[float]  # (makespan, volume, peak-power proxy)


@dataclass
class Study:
    """Restartable state of one population search."""

    backend: str
    seed: int
    space: dict[str, int]
    generation: int = 0
    evaluations: int = 0
    rng_state: dict[str, Any] = field(default_factory=dict)
    population: list[StudyMember] = field(default_factory=list)
    best: dict[str, Any] | None = None
    history: list[dict[str, Any]] = field(default_factory=list)

    @staticmethod
    def for_space(backend: str, seed: int, space: SearchSpace) -> "Study":
        return Study(
            backend=backend,
            seed=seed,
            space={
                "total_width": space.total_width,
                "max_parts": space.max_parts,
                "min_width": space.min_width,
            },
        )

    def matches(self, backend: str, seed: int, space: SearchSpace) -> bool:
        return (
            self.backend == backend
            and self.seed == seed
            and self.space
            == {
                "total_width": space.total_width,
                "max_parts": space.max_parts,
                "min_width": space.min_width,
            }
        )

    def save(self, path: str | Path) -> None:
        payload = {
            "kind": STUDY_KIND,
            "schema": STUDY_SCHEMA,
            **asdict(self),
        }
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(target)

    @staticmethod
    def load(path: str | Path) -> "Study":
        payload = json.loads(Path(path).read_text())
        if payload.get("kind") != STUDY_KIND:
            raise ValueError(
                f"{path} is not a search study (kind="
                f"{payload.get('kind')!r})"
            )
        if payload.get("schema") != STUDY_SCHEMA:
            raise ValueError(
                f"{path} has study schema {payload.get('schema')!r}; "
                f"this build reads schema {STUDY_SCHEMA}"
            )
        return Study(
            backend=payload["backend"],
            seed=payload["seed"],
            space=dict(payload["space"]),
            generation=payload["generation"],
            evaluations=payload["evaluations"],
            rng_state=payload["rng_state"],
            population=[
                StudyMember(
                    widths=list(m["widths"]),
                    assignment=list(m["assignment"]),
                    fitness=list(m["fitness"]),
                )
                for m in payload["population"]
            ],
            best=payload.get("best"),
            history=list(payload.get("history", [])),
        )
