"""Shared value objects of the architecture-search layer.

Every backend searches the same space: a TAM width vector (an integer
partition of the budget) plus an explicit core-to-TAM assignment.
:class:`SearchState` is that point, with the canonicalization every
backend must apply before reporting (widths sorted descending, TAM
indices remapped accordingly), so states coming out of different
backends -- or out of a resumed study -- compare equal when they denote
the same architecture.

:class:`SearchSpace` is the clamped, validated search domain.
:func:`resolve_search_space` is the **one** place the
``max_parts`` / ``min_width`` clamp-and-validate logic lives; it used
to be copy-pasted (and subtly divergent: ``anneal_search`` silently
clamped ``max_parts=0`` to 1 where ``search_partitions`` raised)
between ``repro.core.partition`` and ``repro.core.anneal``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import ScheduleOutcome


@dataclass(frozen=True)
class SearchState:
    """One point of the joint (partition, assignment) space."""

    widths: tuple[int, ...]
    assignment: tuple[int, ...]  # per core (input order), the TAM index

    def __post_init__(self) -> None:
        if not self.widths:
            raise ValueError("a search state needs at least one TAM")
        if any(w < 1 for w in self.widths):
            raise ValueError(f"TAM widths must be >= 1, got {self.widths}")
        k = len(self.widths)
        if any(not 0 <= t < k for t in self.assignment):
            raise ValueError(
                f"assignment references TAMs outside 0..{k - 1}: "
                f"{self.assignment}"
            )

    @property
    def total_width(self) -> int:
        return sum(self.widths)

    def canonical(self) -> "SearchState":
        """Widths sorted descending, assignment remapped to match.

        The sort is stable, so equal widths keep their relative order --
        exactly the canonicalization the pre-refactor annealer applied
        (pinned by the differential suite).
        """
        order = sorted(range(len(self.widths)), key=lambda t: -self.widths[t])
        remap = {old: new for new, old in enumerate(order)}
        return SearchState(
            widths=tuple(self.widths[t] for t in order),
            assignment=tuple(remap[t] for t in self.assignment),
        )

    def outcome(self, makespan: int) -> ScheduleOutcome:
        """Materialize as a scheduler outcome (no canonicalization)."""
        return ScheduleOutcome(
            widths=self.widths, makespan=makespan, assignment=self.assignment
        )


@dataclass(frozen=True)
class PartitionSearchResult:
    """Best architecture found by a search, with its schedule.

    Defined here (the search layer owns it) and re-exported from
    :mod:`repro.core.partition` for the pre-refactor import path.
    """

    outcome: ScheduleOutcome
    partitions_evaluated: int
    strategy: str

    @property
    def widths(self) -> tuple[int, ...]:
        return self.outcome.widths

    @property
    def makespan(self) -> int:
        return self.outcome.makespan


@dataclass(frozen=True)
class SearchSpace:
    """The validated domain one search runs over."""

    total_width: int
    max_parts: int
    min_width: int

    @property
    def single_tam(self) -> tuple[int, ...]:
        """The trivial full-width partition (always feasible)."""
        return (self.total_width,)


def resolve_search_space(
    num_cores: int,
    total_width: int,
    *,
    max_parts: int | None = None,
    min_width: int = 1,
) -> SearchSpace:
    """Clamp and validate the search controls into a :class:`SearchSpace`.

    Shared by every entry point (``search_partitions``, the annealer
    shim, the pipeline's architecture stages), so the rules cannot
    drift again:

    * ``max_parts`` defaults to ``min(num_cores, 6)`` (the paper never
      needs more TAMs than cores, and caps the enumeration at 6);
    * ``max_parts`` is clamped down so every TAM can still get
      ``min_width`` wires;
    * a budget that cannot host even one ``min_width`` TAM raises, as
      does an explicit ``max_parts < 1`` (previously the annealer
      silently clamped the latter to 1).
    """
    if num_cores < 1:
        raise ValueError("cannot design an architecture for zero cores")
    if total_width < 1:
        raise ValueError(f"total width must be >= 1, got {total_width}")
    if min_width < 1:
        raise ValueError(f"min_width must be >= 1, got {min_width}")
    if max_parts is None:
        max_parts = min(num_cores, 6)
    if max_parts < 1:
        raise ValueError(f"max_parts must be >= 1, got {max_parts}")
    max_parts = min(max_parts, total_width // min_width)
    if max_parts < 1:
        raise ValueError(
            f"width {total_width} cannot host a TAM of min width {min_width}"
        )
    return SearchSpace(
        total_width=total_width, max_parts=max_parts, min_width=min_width
    )
