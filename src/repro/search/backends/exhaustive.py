"""Exhaustive backend: schedule every partition, keep the best.

Bit-identical to the pre-refactor ``_exhaustive`` in
``repro/core/partition.py`` (pinned by the differential suite),
including the ``REPRO_SCALAR_KERNELS`` gate between the scalar
reference loop and the vectorized batch kernel.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.flags import use_scalar_kernels
from repro.search.evaluator import Evaluator
from repro.search.state import PartitionSearchResult, SearchSpace


class ExhaustiveBackend:
    name = "exhaustive"
    hyperparameters: Mapping[str, type] = {}

    def run(
        self, evaluator: Evaluator, space: SearchSpace, **options: Any
    ) -> PartitionSearchResult:
        from repro.core.partition import iter_partitions, partitions_list

        if use_scalar_kernels():
            for widths in iter_partitions(
                space.total_width, space.max_parts, space.min_width
            ):
                evaluator.schedule_scalar(widths)
        else:
            partitions = partitions_list(
                space.total_width, space.max_parts, space.min_width
            )
            # The batch kernel tracks the argmin winner on the
            # evaluator (first minimum -- the legacy tie-break).
            evaluator.batch_makespans(partitions)
        best = evaluator.best
        assert best is not None  # (total,) is always enumerated
        return PartitionSearchResult(
            outcome=best,
            partitions_evaluated=evaluator.evaluations,
            strategy=self.name,
        )
