"""Simulated-annealing backend over the joint (partition, assignment) space.

Behaviorally the pre-refactor ``repro/core/anneal.py`` with exactly one
intentional change, shipped as its own fix: the temperature now cools
**once per iteration**.  The historical loop hit ``continue`` on
invalid moves *before* ``temperature *= cooling``, so the effective
cooling schedule depended on the move-validity rate -- more invalid
draws meant a hotter, longer exploration phase than the ``cooling``
knob promised.  The differential suite pins this backend bit-for-bit
against the historical code with only the cooling line moved
(``legacy_anneal_search_fixed``); everything else -- RNG draw order,
move semantics, acceptance rule, canonicalization -- is unchanged.

Proposals (iterations attempted) and evaluations (valid proposals
actually costed) are counted separately: ``search.proposals`` vs.
``search.evaluations`` in obs, with ``partitions_evaluated`` keeping
its historical meaning of 1 + valid proposals.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro import obs
from repro.search.evaluator import Evaluator
from repro.search.moves import propose_move
from repro.search.state import PartitionSearchResult, SearchSpace, SearchState

#: Iterations are chunked into this many traced temperature epochs.
EPOCHS = 10


class AnnealBackend:
    name = "anneal"
    hyperparameters: Mapping[str, type] = {
        "iterations": int,
        "initial_temperature": float,
        "cooling": float,
        "seed": int,
    }

    def run(
        self,
        evaluator: Evaluator,
        space: SearchSpace,
        *,
        iterations: int = 4000,
        initial_temperature: float | None = None,
        cooling: float = 0.999,
        seed: int = 0,
    ) -> PartitionSearchResult:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")

        rng = np.random.default_rng(seed)
        widths: list[int] = [space.total_width]
        assignment: list[int] = [0] * len(evaluator.core_names)
        current = evaluator.makespan_of(widths, assignment)
        best = current
        best_state = (list(widths), list(assignment))
        if initial_temperature is None:
            initial_temperature = max(1.0, 0.2 * current)
        temperature = float(initial_temperature)
        proposals = 0

        epoch_len = max(1, -(-iterations // EPOCHS))
        for start in range(0, iterations, epoch_len):
            stop = min(start + epoch_len, iterations)
            with obs.span(
                "search.epoch",
                backend=self.name,
                epoch=start // epoch_len,
                temperature=temperature,
            ) as attrs:
                for _ in range(start, stop):
                    proposals += 1
                    proposal = propose_move(
                        rng,
                        widths,
                        assignment,
                        max_parts=space.max_parts,
                        min_width=space.min_width,
                    )
                    if proposal is not None:
                        new_widths, new_assignment = proposal
                        candidate = evaluator.makespan_of(
                            new_widths, new_assignment
                        )
                        delta = candidate - current
                        if delta <= 0 or rng.random() < math.exp(
                            -delta / max(1e-9, temperature)
                        ):
                            widths, assignment, current = (
                                new_widths,
                                new_assignment,
                                candidate,
                            )
                            if current < best:
                                best = current
                                best_state = (list(widths), list(assignment))
                    temperature *= cooling
                attrs["best_makespan"] = best
                attrs["proposals"] = proposals
                attrs["evaluations"] = evaluator.evaluations

        obs.inc("search.proposals", proposals)
        best_widths, best_assignment = best_state
        outcome = SearchState(
            widths=tuple(best_widths), assignment=tuple(best_assignment)
        ).canonical().outcome(best)
        return PartitionSearchResult(
            outcome=outcome,
            partitions_evaluated=evaluator.evaluations,
            strategy=self.name,
        )
