"""Greedy backend: split/shift/merge around the bottleneck TAM.

Bit-identical to the pre-refactor ``_greedy`` in
``repro/core/partition.py`` (pinned by the differential suite): start
from the single full-width TAM, find the TAM that finishes last, try
splitting it, pulling a wire from every possible donor, and merging the
two narrowest TAMs; take the first strict improvement and repeat.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.core.scheduler import ScheduleOutcome
from repro.flags import use_scalar_kernels
from repro.search.evaluator import Evaluator
from repro.search.state import PartitionSearchResult, SearchSpace


def greedy_moves(
    widths: list[int], bottleneck: int, min_width: int
) -> list[list[int]]:
    """Candidate width vectors one greedy step away from ``widths``."""
    candidates: list[list[int]] = []
    w = widths[bottleneck]
    if w >= 2 * min_width:
        half = w // 2
        split = widths[:bottleneck] + widths[bottleneck + 1 :] + [w - half, half]
        candidates.append(split)
    for donor in range(len(widths)):
        if donor == bottleneck or widths[donor] <= min_width:
            continue
        shifted = list(widths)
        shifted[donor] -= 1
        shifted[bottleneck] += 1
        candidates.append(shifted)
    if len(widths) >= 2:
        order = sorted(range(len(widths)), key=lambda i: widths[i])
        a, b = order[0], order[1]
        merged = [w for i, w in enumerate(widths) if i not in (a, b)]
        merged.append(widths[a] + widths[b])
        candidates.append(merged)
    return candidates


def bottleneck_tam(evaluator: Evaluator, outcome: ScheduleOutcome) -> int:
    """The TAM with the largest summed test time (first on ties)."""
    loads = [0] * len(outcome.widths)
    for index, tam in enumerate(outcome.assignment):
        loads[tam] += evaluator.table.row(outcome.widths[tam])[index]
    return max(range(len(loads)), key=lambda i: loads[i])


class GreedyBackend:
    name = "greedy"
    hyperparameters: Mapping[str, type] = {}

    def run(
        self, evaluator: Evaluator, space: SearchSpace, **options: Any
    ) -> PartitionSearchResult:
        schedule: Callable[[Sequence[int]], ScheduleOutcome]
        if use_scalar_kernels():
            schedule = evaluator.schedule_scalar
        else:
            schedule = evaluator.schedule
        best = schedule(space.single_tam)
        improved = True
        while improved:
            improved = False
            bottleneck = bottleneck_tam(evaluator, best)
            for widths in greedy_moves(
                list(best.widths), bottleneck, space.min_width
            ):
                if len(widths) > space.max_parts or any(
                    w < space.min_width for w in widths
                ):
                    continue
                outcome = schedule(sorted(widths, reverse=True))
                if outcome.makespan < best.makespan:
                    best = outcome
                    improved = True
                    break
        return PartitionSearchResult(
            outcome=best,
            partitions_evaluated=evaluator.evaluations,
            strategy=self.name,
        )
