"""Evolutionary backend: a population search over the joint space.

The first backend the ``repro.search`` layer exists for: a (mu+lambda)-
style genetic search whose individuals are full
:class:`~repro.search.state.SearchState` points.  Mutation reuses the
annealer's move set (reassign / shift / split / merge, same code in
:mod:`repro.search.moves`); crossover mixes the core-to-TAM assignment
vectors of two parents; selection is multi-objective -- members are
ranked by :func:`repro.explore.pareto.pareto_fronts` over
``(makespan, data volume, peak-power proxy)`` and tournaments pick by
front rank, so low-volume / low-power architectures survive even when
a single makespan champion exists.

The search is resumable: with ``study=<path>`` the full state (RNG,
population, fitness, best, history) is checkpointed to a JSON
:class:`~repro.search.study.Study` after initialization and after
every generation, and ``resume=true`` continues a saved study
bit-identically to a run that never stopped.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro import obs
from repro.explore.pareto import pareto_fronts
from repro.search.evaluator import Evaluator
from repro.search.moves import propose_move
from repro.search.state import PartitionSearchResult, SearchSpace, SearchState
from repro.search.study import Study, StudyMember

#: A mutation retries at most this many draws per requested move, so a
#: cramped space (e.g. max_parts=1 disables every move) cannot spin.
MUTATION_TRIES_PER_MOVE = 8

Fitness = tuple[float, ...]


def random_state(
    rng: np.random.Generator, space: SearchSpace, num_cores: int
) -> SearchState:
    """A uniform-ish random member: random composition + assignment."""
    k = int(rng.integers(1, space.max_parts + 1))
    extra = space.total_width - k * space.min_width
    cuts = sorted(int(rng.integers(0, extra + 1)) for _ in range(k - 1))
    bounds = [0, *cuts, extra]
    widths = tuple(
        space.min_width + bounds[i + 1] - bounds[i] for i in range(k)
    )
    assignment = tuple(int(rng.integers(0, k)) for _ in range(num_cores))
    return SearchState(widths=widths, assignment=assignment)


def crossover_states(
    rng: np.random.Generator, a: SearchState, b: SearchState
) -> SearchState:
    """Child on parent A's widths, mixing both assignment vectors.

    Per core a fair coin picks parent B's TAM when it also exists under
    A's partition (TAM counts can differ); otherwise the core keeps
    A's TAM.
    """
    k = len(a.widths)
    assignment = tuple(
        b.assignment[i]
        if rng.random() < 0.5 and b.assignment[i] < k
        else a.assignment[i]
        for i in range(len(a.assignment))
    )
    return SearchState(widths=a.widths, assignment=assignment)


def mutate_state(
    rng: np.random.Generator,
    state: SearchState,
    space: SearchSpace,
    count: int,
) -> SearchState:
    """Apply ``count`` valid moves from the shared SA move set."""
    widths, assignment = list(state.widths), list(state.assignment)
    applied = 0
    for _ in range(MUTATION_TRIES_PER_MOVE * count):
        if applied >= count:
            break
        proposal = propose_move(
            rng,
            widths,
            assignment,
            max_parts=space.max_parts,
            min_width=space.min_width,
        )
        if proposal is not None:
            widths, assignment = proposal
            applied += 1
    return SearchState(widths=tuple(widths), assignment=tuple(assignment))


def rank_population(fitness: list[Fitness]) -> tuple[list[int], int]:
    """Best-first member indices + size of the non-dominated front.

    Front by front (non-dominated sorting), within a front by makespan
    then by index -- deterministic for identical fitness vectors.
    """
    fronts = pareto_fronts(fitness)
    order: list[int] = []
    for front in fronts:
        order.extend(sorted(front, key=lambda i: (fitness[i][0], i)))
    return order, len(fronts[0]) if fronts else 0


class EvolutionaryBackend:
    name = "evolutionary"
    hyperparameters: Mapping[str, type] = {
        "generations": int,
        "population": int,
        "seed": int,
        "elite": int,
        "crossover": float,
        "mutations": int,
        "tournament": int,
        "study": str,
        "resume": bool,
    }

    def run(
        self,
        evaluator: Evaluator,
        space: SearchSpace,
        *,
        generations: int = 40,
        population: int = 24,
        seed: int = 0,
        elite: int = 4,
        crossover: float = 0.6,
        mutations: int = 2,
        tournament: int = 3,
        study: str = "",
        resume: bool = False,
    ) -> PartitionSearchResult:
        if generations < 0:
            raise ValueError(f"generations must be >= 0, got {generations}")
        if population < 2:
            raise ValueError(f"population must be >= 2, got {population}")
        if not 0.0 <= crossover <= 1.0:
            raise ValueError(f"crossover must be in [0, 1], got {crossover}")
        if mutations < 1:
            raise ValueError(f"mutations must be >= 1, got {mutations}")
        if tournament < 1:
            raise ValueError(f"tournament must be >= 1, got {tournament}")
        if elite < 0:
            raise ValueError(f"elite must be >= 0, got {elite}")
        if resume and not study:
            raise ValueError("resume=true requires a study path")

        num_cores = len(evaluator.core_names)
        rng = np.random.default_rng(seed)
        store: Study | None = None
        if resume and study and Path(study).exists():
            store = Study.load(study)
            if not store.matches(self.name, seed, space):
                raise ValueError(
                    f"study {study} was recorded for a different "
                    f"backend/seed/search space; refusing to resume"
                )

        if store is not None and store.population:
            rng.bit_generator.state = store.rng_state
            pop: list[tuple[SearchState, Fitness]] = [
                (
                    SearchState(
                        widths=tuple(m.widths),
                        assignment=tuple(m.assignment),
                    ),
                    tuple(m.fitness),
                )
                for m in store.population
            ]
            evaluator.evaluations = store.evaluations
            assert store.best is not None
            best_makespan = int(store.best["makespan"])
            best_state = SearchState(
                widths=tuple(store.best["widths"]),
                assignment=tuple(store.best["assignment"]),
            )
            start_generation = store.generation
            history = list(store.history)
        else:
            single = SearchState(
                widths=space.single_tam, assignment=(0,) * num_cores
            )
            states = [single] + [
                random_state(rng, space, num_cores)
                for _ in range(population - 1)
            ]
            pop = [(s, evaluator.objectives(s)) for s in states]
            best_index = min(
                range(len(pop)), key=lambda i: (pop[i][1][0], i)
            )
            best_state, best_fit = pop[best_index]
            best_makespan = int(best_fit[0])
            start_generation = 0
            history = []
            store = Study.for_space(self.name, seed, space)
            self._checkpoint(
                store,
                study,
                rng,
                pop,
                best_makespan,
                best_state,
                start_generation,
                evaluator,
                history,
            )

        for generation in range(start_generation, generations):
            with obs.span(
                "search.generation",
                backend=self.name,
                generation=generation,
            ) as attrs:
                order, front_size = rank_population([f for _, f in pop])
                position = {idx: r for r, idx in enumerate(order)}

                def pick() -> SearchState:
                    drawn = [
                        int(rng.integers(0, len(pop)))
                        for _ in range(tournament)
                    ]
                    return pop[min(drawn, key=lambda i: position[i])][0]

                children = [pop[i][0] for i in order[: min(elite, population)]]
                while len(children) < population:
                    parent_a = pick()
                    parent_b = pick()
                    if rng.random() < crossover:
                        child = crossover_states(rng, parent_a, parent_b)
                    else:
                        child = parent_a
                    children.append(
                        mutate_state(rng, child, space, mutations)
                    )
                pop = [(s, evaluator.objectives(s)) for s in children]
                for state, fit in pop:
                    if fit[0] < best_makespan:
                        best_makespan = int(fit[0])
                        best_state = state
                history.append(
                    {
                        "generation": generation,
                        "best_makespan": best_makespan,
                        "evaluations": evaluator.evaluations,
                        "front_size": front_size,
                    }
                )
                attrs["best_makespan"] = best_makespan
                attrs["front_size"] = front_size
                attrs["evaluations"] = evaluator.evaluations
            self._checkpoint(
                store,
                study,
                rng,
                pop,
                best_makespan,
                best_state,
                generation + 1,
                evaluator,
                history,
            )

        outcome = best_state.canonical().outcome(best_makespan)
        return PartitionSearchResult(
            outcome=outcome,
            partitions_evaluated=evaluator.evaluations,
            strategy=self.name,
        )

    @staticmethod
    def _checkpoint(
        store: Study,
        study_path: str,
        rng: np.random.Generator,
        pop: list[tuple[SearchState, Fitness]],
        best_makespan: int,
        best_state: SearchState,
        generation: int,
        evaluator: Evaluator,
        history: list[dict[str, Any]],
    ) -> None:
        store.generation = generation
        store.evaluations = evaluator.evaluations
        store.rng_state = rng.bit_generator.state
        store.population = [
            StudyMember(
                widths=list(s.widths),
                assignment=list(s.assignment),
                fitness=list(f),
            )
            for s, f in pop
        ]
        store.best = {
            "makespan": best_makespan,
            "widths": list(best_state.widths),
            "assignment": list(best_state.assignment),
        }
        store.history = history
        if study_path:
            store.save(study_path)
