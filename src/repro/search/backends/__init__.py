"""Built-in search backends; importing this package registers them."""

from repro.search.backend import register_backend
from repro.search.backends.anneal import AnnealBackend
from repro.search.backends.evolutionary import EvolutionaryBackend
from repro.search.backends.exhaustive import ExhaustiveBackend
from repro.search.backends.greedy import GreedyBackend

register_backend(ExhaustiveBackend())
register_backend(GreedyBackend())
register_backend(AnnealBackend())
register_backend(EvolutionaryBackend())

__all__ = [
    "AnnealBackend",
    "EvolutionaryBackend",
    "ExhaustiveBackend",
    "GreedyBackend",
]
