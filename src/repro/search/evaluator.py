"""The one evaluation funnel every search backend shares.

An :class:`Evaluator` wraps the scheduling kernels
(:func:`repro.core.scheduler.schedule_cores` and its indexed/batched
fast paths over a :class:`~repro.core.scheduler.TimeTable`) behind a
small API the backends drive:

* :meth:`schedule` -- list-schedule a partition (memoized on the width
  vector; a memo hit still counts as an evaluation so the legacy
  ``partitions_evaluated`` numbers stay bit-identical);
* :meth:`batch_makespans` -- the vectorized many-partitions kernel;
* :meth:`makespan_of` -- cost of an explicit (widths, assignment)
  state, the joint-space evaluation the annealer and the evolutionary
  searcher need;
* :meth:`objectives` -- the multi-objective fitness
  ``(makespan, data volume, peak-power proxy)`` when volume/power
  lookups are wired in (they are optional; without them the extra
  objectives are 0 and fitness degenerates to makespan).

It also owns the bookkeeping every backend used to reimplement:
evaluation counting, best-so-far tracking, and the
``search.evaluations`` / ``search.best_makespan`` observability
signals surfaced in :class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.core.scheduler import (
    ScheduleOutcome,
    TimeFn,
    TimeTable,
    schedule_cores,
    schedule_cores_indexed,
    schedule_makespans_batch,
)
from repro.search.state import SearchState

#: ``volume_of(core_name, tam_width) -> test data volume`` (bits).
VolumeFn = Callable[[str, int], int]

#: ``power_of(core_name) -> flat test power`` (arbitrary units).
PowerFn = Callable[[str], float]

#: Memoized schedule outcomes kept per evaluator before a wholesale
#: reset; one entry per *distinct* width vector, so only a pathological
#: backend ever reaches it.
MEMO_MAX_ENTRIES = 1 << 17


class Evaluator:
    """Memoized, counting evaluation of search states for one SOC."""

    def __init__(
        self,
        core_names: Sequence[str],
        time_of: TimeFn,
        *,
        volume_of: VolumeFn | None = None,
        power_of: PowerFn | None = None,
    ) -> None:
        self.core_names = list(core_names)
        self.time_of = time_of
        self.volume_of = volume_of
        self.power_of = power_of
        self.table = TimeTable(self.core_names, time_of)
        #: Evaluations performed (memo hits included -- this is the
        #: number the backends report as ``partitions_evaluated``).
        self.evaluations = 0
        #: Distinct schedules actually computed (memo misses).
        self.distinct_schedules = 0
        #: Best schedule seen so far, across every evaluation path.
        self.best: ScheduleOutcome | None = None
        self._memo: dict[tuple[int, ...], ScheduleOutcome] = {}

    # ------------------------------------------------------------------
    # Evaluation paths.
    # ------------------------------------------------------------------

    def schedule(self, widths: Sequence[int]) -> ScheduleOutcome:
        """List-schedule one partition (memoized, fast-path lookups)."""
        key = tuple(widths)
        self._count(1)
        outcome = self._memo.get(key)
        if outcome is None:
            outcome = schedule_cores_indexed(self.table, key)
            self._remember(key, outcome)
        self._track(outcome)
        return outcome

    def schedule_scalar(self, widths: Sequence[int]) -> ScheduleOutcome:
        """List-schedule through the scalar reference kernel.

        Bit-identical to :meth:`schedule`; kept as a separate path so
        ``REPRO_SCALAR_KERNELS=1`` exercises the original per-call
        ``time_of`` loop exactly as the pre-refactor code did.
        """
        key = tuple(widths)
        self._count(1)
        outcome = self._memo.get(key)
        if outcome is None:
            outcome = schedule_cores(self.core_names, key, self.time_of)
            self._remember(key, outcome)
        self._track(outcome)
        return outcome

    def batch_makespans(
        self, partitions: Sequence[tuple[int, ...]]
    ) -> np.ndarray:
        """Vectorized makespans of many partitions (one evaluation each)."""
        self._count(len(partitions))
        makespans = schedule_makespans_batch(self.table, partitions)
        if len(partitions):
            winner = int(np.argmin(makespans))
            self._track(
                schedule_cores_indexed(self.table, partitions[winner])
            )
        return makespans

    def makespan_of(
        self, widths: Sequence[int], assignment: Sequence[int]
    ) -> int:
        """Makespan of an explicit joint state (no list heuristic)."""
        self._count(1)
        loads = [0] * len(widths)
        for index, tam in enumerate(assignment):
            loads[tam] += self.table.row(widths[tam])[index]
        makespan = max(loads) if loads else 0
        self._track(
            ScheduleOutcome(
                widths=tuple(widths),
                makespan=makespan,
                assignment=tuple(assignment),
            )
        )
        return makespan

    def objectives(self, state: SearchState) -> tuple[int, int, float]:
        """Multi-objective fitness ``(makespan, volume, peak power)``.

        * *makespan* -- the joint-state cost (:meth:`makespan_of`);
        * *volume* -- total test data streamed, summed per core at its
          TAM's width (0 when no ``volume_of`` is wired);
        * *peak power* -- an upper-bound proxy: cores on one TAM run
          serially, TAMs in parallel, so the instantaneous peak never
          exceeds the sum over TAMs of the largest member power (0
          when no ``power_of`` is wired).  The exact sweep-line peak
          needs a materialized schedule; the proxy is monotone enough
          to steer a population.
        """
        makespan = self.makespan_of(state.widths, state.assignment)
        volume = 0
        if self.volume_of is not None:
            volume = sum(
                self.volume_of(name, state.widths[tam])
                for name, tam in zip(self.core_names, state.assignment)
            )
        power = 0.0
        if self.power_of is not None:
            per_tam = [0.0] * len(state.widths)
            for name, tam in zip(self.core_names, state.assignment):
                per_tam[tam] = max(per_tam[tam], self.power_of(name))
            power = sum(per_tam)
        return makespan, volume, power

    # ------------------------------------------------------------------
    # Bookkeeping.
    # ------------------------------------------------------------------

    def _count(self, n: int) -> None:
        self.evaluations += n
        obs.inc("search.evaluations", n)

    def _remember(
        self, key: tuple[int, ...], outcome: ScheduleOutcome
    ) -> None:
        self.distinct_schedules += 1
        if len(self._memo) >= MEMO_MAX_ENTRIES:
            self._memo.clear()
        self._memo[key] = outcome

    def _track(self, outcome: ScheduleOutcome) -> None:
        if self.best is None or outcome.makespan < self.best.makespan:
            self.best = outcome
            obs.set_gauge("search.best_makespan", outcome.makespan)

    @property
    def best_makespan(self) -> int | None:
        return None if self.best is None else self.best.makespan
