"""The architecture-search layer (the paper's step 3, as a seam).

Everything that picks a TAM partition + core assignment goes through
this package: shared value objects (:mod:`~repro.search.state`), one
memoized counting :class:`~repro.search.evaluator.Evaluator`, the SA
move set (:mod:`~repro.search.moves`), and pluggable strategies behind
the :class:`~repro.search.backend.SearchBackend` protocol -- built-ins
``exhaustive``, ``greedy``, ``anneal``, and ``evolutionary``, with
:func:`~repro.search.backend.run_search` as the front door every
consumer (``search_partitions``, the pipeline stages, the CLI) uses.

See ``docs/search.md`` for the protocol, the hyperparameters of each
backend, and the study-store / resume workflow.
"""

from repro.search.backend import (
    BackendConfig,
    SearchBackend,
    backend_names,
    coerce_options,
    get_backend,
    register_backend,
    run_search,
)
from repro.search.evaluator import Evaluator
from repro.search.moves import MOVE_NAMES, propose_move
from repro.search.state import (
    PartitionSearchResult,
    SearchSpace,
    SearchState,
    resolve_search_space,
)
from repro.search.study import Study, StudyMember

__all__ = [
    "BackendConfig",
    "Evaluator",
    "MOVE_NAMES",
    "PartitionSearchResult",
    "SearchBackend",
    "SearchSpace",
    "SearchState",
    "Study",
    "StudyMember",
    "backend_names",
    "coerce_options",
    "get_backend",
    "propose_move",
    "register_backend",
    "resolve_search_space",
    "run_search",
]
