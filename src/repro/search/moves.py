"""The neighborhood moves of the joint (partition, assignment) space.

Four moves, drawn uniformly, exactly as the original annealer did:

========  =========  ====================================================
index     name       effect
========  =========  ====================================================
0         reassign   move one core to a (possibly the same) random TAM
1         shift      move one wire from a donor TAM to a taker TAM
2         split      split one TAM in two, rehoming its cores coin-flip
3         merge      merge two TAMs (cores follow, indices compact)
========  =========  ====================================================

A proposal is *invalid* (returns ``None``) when the drawn move cannot
apply: the guard on the move index fails, shift drew ``donor == taker``
or a donor at ``min_width``, split drew a TAM too narrow to split, or
merge drew ``a == b``.

The RNG draw order in here is **load-bearing**: the differential suite
pins the refactored annealer bit-for-bit against the historical
implementation, and that only holds if every ``rng.integers`` /
``rng.random`` call happens in the same sequence -- including the
short-circuit in split, where the coin flip is drawn only for cores
currently homed on the split TAM.  Do not reorder draws.
"""

from __future__ import annotations

import numpy as np

#: Move index -> name, for labels and study-store records.
MOVE_NAMES = ("reassign", "shift", "split", "merge")


def propose_move(
    rng: np.random.Generator,
    widths: list[int],
    assignment: list[int],
    *,
    max_parts: int,
    min_width: int,
) -> tuple[list[int], list[int]] | None:
    """Draw one move and apply it, or return ``None`` if invalid.

    ``widths`` / ``assignment`` are never mutated; a valid proposal
    returns fresh lists.
    """
    move = int(rng.integers(0, 4))
    n = len(assignment)
    new_widths = list(widths)
    new_assignment = list(assignment)
    if move == 0 and len(new_widths) > 1:
        index = int(rng.integers(0, n))
        new_assignment[index] = int(rng.integers(0, len(new_widths)))
    elif move == 1 and len(new_widths) > 1:
        donor = int(rng.integers(0, len(new_widths)))
        taker = int(rng.integers(0, len(new_widths)))
        if donor == taker or new_widths[donor] <= min_width:
            return None
        new_widths[donor] -= 1
        new_widths[taker] += 1
    elif move == 2 and len(new_widths) < max_parts:
        victim = int(rng.integers(0, len(new_widths)))
        if new_widths[victim] < 2 * min_width:
            return None
        half = int(rng.integers(min_width, new_widths[victim] - min_width + 1))
        new_widths[victim] -= half
        new_widths.append(half)
        fresh = len(new_widths) - 1
        for index in range(n):
            if new_assignment[index] == victim and rng.random() < 0.5:
                new_assignment[index] = fresh
    elif move == 3 and len(new_widths) > 1:
        a = int(rng.integers(0, len(new_widths)))
        b = int(rng.integers(0, len(new_widths)))
        if a == b:
            return None
        a, b = min(a, b), max(a, b)
        new_widths[a] += new_widths[b]
        del new_widths[b]
        for index in range(n):
            if new_assignment[index] == b:
                new_assignment[index] = a
            elif new_assignment[index] > b:
                new_assignment[index] -= 1
    else:
        return None
    return new_widths, new_assignment
