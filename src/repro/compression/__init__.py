"""Test-data compression substrate.

* :mod:`repro.compression.cubes` -- 0/1/X test-cube sets and the seeded
  synthetic cube generator.
* :mod:`repro.compression.selective` -- bit-accurate selective-encoding
  codec (reconstruction of Wang & Chakrabarty, ITC 2006 -- the paper's
  ref [14]) plus a vectorized slice-cost kernel.
* :mod:`repro.compression.decompressor` -- cycle-level model of the
  on-chip decompressor that expands the codeword stream back to scan
  slices.
* :mod:`repro.compression.estimator` -- sampled-slice estimator of the
  codeword count for industrial-scale cores.
* :mod:`repro.compression.golomb` / :mod:`repro.compression.fdr` --
  run-length baseline codecs used in ablation benches.
"""

from repro.compression.cubes import TestCubeSet, generate_cubes, X
from repro.compression.selective import (
    Codeword,
    CompressedStream,
    code_parameters,
    encode_slice,
    encode_slices,
    slice_costs,
    encoded_bits,
)
from repro.compression.decompressor import Decompressor, expand_stream
from repro.compression.estimator import SliceStatistics, estimate_codewords

__all__ = [
    "TestCubeSet",
    "generate_cubes",
    "X",
    "Codeword",
    "CompressedStream",
    "code_parameters",
    "encode_slice",
    "encode_slices",
    "slice_costs",
    "encoded_bits",
    "Decompressor",
    "expand_stream",
    "SliceStatistics",
    "estimate_codewords",
]
