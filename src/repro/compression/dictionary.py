"""Dictionary-based test-data compression with fixed-length indices.

A reconstruction of the Li & Chakrabarty scheme (ACM TODAES 2003,
"Test Data Compression Using Dictionaries with Selective Entries and
Fixed-Length Indices"), the other major TDC family the paper's venue
discusses.  The test set is viewed as a stream of ``m``-bit scan
slices; the most frequent slices enter a dictionary of ``2^index_bits``
entries.  Each slice is transmitted as

* ``1`` flag bit + ``index_bits`` (a dictionary *hit*), or
* ``0`` flag bit + the ``m`` literal bits (a *miss*).

Don't-care handling: the original uses clique partitioning over
X-compatible words; we use the simpler canonicalization that matches
the selective-encoding decompressor's behavior -- every slice's X bits
are filled with the slice's majority care symbol before frequency
counting, so compatible sparse slices collapse onto the same canonical
word (the all-fill word dominates sparse test sets, which is exactly
where dictionaries shine).

Timing model on a ``w``-wire TAM: the ATE delivers ``w`` bits per
cycle, so a hit costs ``ceil((1 + index_bits) / w)`` cycles and a miss
``ceil((1 + m) / w)`` cycles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.compression.cubes import X


def canonicalize(slices: np.ndarray) -> np.ndarray:
    """Fill every slice's X bits with its majority care symbol."""
    arr = np.asarray(slices, dtype=np.int8)
    if arr.ndim == 3:
        arr = arr.reshape(-1, arr.shape[-1])
    if arr.ndim != 2:
        raise ValueError("slices must be 2-D (S, m) or 3-D (p, si, m)")
    ones = (arr == 1).sum(axis=1)
    zeros = (arr == 0).sum(axis=1)
    fill = (ones > zeros).astype(np.int8)  # majority symbol (ties -> 0)
    out = arr.copy()
    xs = out == X
    out[xs] = np.broadcast_to(fill[:, None], out.shape)[xs]
    return out


def _pack(rows: np.ndarray) -> list[bytes]:
    return [row.tobytes() for row in rows]


@dataclass(frozen=True)
class Dictionary:
    """A built dictionary: canonical words mapped to fixed indices."""

    m: int
    index_bits: int
    words: tuple[bytes, ...]  # len <= 2**index_bits

    @property
    def capacity(self) -> int:
        return 2**self.index_bits

    @property
    def ram_bits(self) -> int:
        """On-chip dictionary storage: entries x slice width."""
        return len(self.words) * self.m

    def index_of(self, word: bytes) -> int | None:
        try:
            return self.words.index(word)
        except ValueError:
            return None


@dataclass(frozen=True)
class DictionaryStats:
    """Compression outcome of one dictionary coding run."""

    m: int
    index_bits: int
    slices: int
    hits: int
    compressed_bits: int

    @property
    def misses(self) -> int:
        return self.slices - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.slices if self.slices else 0.0


def build_dictionary(slices: np.ndarray, index_bits: int) -> Dictionary:
    """Fill a ``2^index_bits``-entry dictionary with the top slices."""
    if index_bits < 1:
        raise ValueError(f"index_bits must be >= 1, got {index_bits}")
    canonical = canonicalize(slices)
    counts = Counter(_pack(canonical))
    top = [word for word, _ in counts.most_common(2**index_bits)]
    return Dictionary(
        m=int(canonical.shape[1]), index_bits=index_bits, words=tuple(top)
    )


def compression_stats(
    slices: np.ndarray, dictionary: Dictionary
) -> DictionaryStats:
    """Bits and hit statistics for coding ``slices`` with ``dictionary``."""
    canonical = canonicalize(slices)
    if canonical.shape[1] != dictionary.m:
        raise ValueError(
            f"slice width {canonical.shape[1]} != dictionary width "
            f"{dictionary.m}"
        )
    table = set(dictionary.words)
    hits = sum(1 for word in _pack(canonical) if word in table)
    total = int(canonical.shape[0])
    misses = total - hits
    bits = hits * (1 + dictionary.index_bits) + misses * (1 + dictionary.m)
    return DictionaryStats(
        m=dictionary.m,
        index_bits=dictionary.index_bits,
        slices=total,
        hits=hits,
        compressed_bits=bits,
    )


def delivery_cycles(stats: DictionaryStats, tam_width: int) -> int:
    """ATE cycles to stream the coded slices over ``tam_width`` wires."""
    if tam_width < 1:
        raise ValueError(f"TAM width must be >= 1, got {tam_width}")
    hit_cost = -(-(1 + stats.index_bits) // tam_width)
    miss_cost = -(-(1 + stats.m) // tam_width)
    return stats.hits * hit_cost + stats.misses * miss_cost


def encode(slices: np.ndarray, dictionary: Dictionary) -> list[int]:
    """Encode to an explicit bit list (flag + index / flag + literal)."""
    canonical = canonicalize(slices)
    bits: list[int] = []
    for row, word in zip(canonical, _pack(canonical)):
        index = dictionary.index_of(word)
        if index is not None:
            bits.append(1)
            bits.extend(
                (index >> (dictionary.index_bits - 1 - i)) & 1
                for i in range(dictionary.index_bits)
            )
        else:
            bits.append(0)
            bits.extend(int(b) for b in row)
    return bits


def decode(
    bits: list[int], dictionary: Dictionary, slice_count: int
) -> np.ndarray:
    """Invert :func:`encode`; returns fully specified ``(S, m)`` slices."""
    out = np.zeros((slice_count, dictionary.m), dtype=np.int8)
    cursor = 0
    for s in range(slice_count):
        flag = bits[cursor]
        cursor += 1
        if flag:
            index = 0
            for _ in range(dictionary.index_bits):
                index = (index << 1) | bits[cursor]
                cursor += 1
            word = dictionary.words[index]
            out[s] = np.frombuffer(word, dtype=np.int8)
        else:
            for i in range(dictionary.m):
                out[s, i] = bits[cursor]
                cursor += 1
    if cursor != len(bits):
        raise ValueError(
            f"stream length mismatch: consumed {cursor} of {len(bits)} bits"
        )
    return out
