"""Sampled-slice estimator of the selective-encoding codeword count.

Industrial cores carry gigabits of test data; materializing their cubes
to run the exact encoder over every (w, m) candidate would be hopeless.
This estimator reproduces the exact cost model of
:func:`repro.compression.selective.slice_costs` on a *sample* of slices
whose statistics follow the core's cube model:

* the wrapper design fixes, per shift cycle ``j``, how many of the ``m``
  slice positions carry a real stimulus bit (``active_j``) -- the rest
  are idle pad bits (always free);
* each active position is a care bit with probability
  ``core.care_bit_density`` and, if care, is 1 with probability
  ``core.one_fraction`` (the cube generator's model);
* per slice the encoder pays one END codeword, one codeword per
  minority-symbol care bit, except that groups of ``k`` positions
  holding >= 3 such bits are copied for 2 codewords.

Sampling is stratified over the shift cycles (``samples`` evenly spaced
slice indices) and deterministic in ``(core.seed, m, samples)``, so every
run of an experiment sees the same estimate.  Accuracy against the exact
encoder is unit-tested on downscaled cores (a few percent at the default
sample count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.compression.selective import GROUP_COPY_THRESHOLD, code_parameters
from repro.soc.core import Core
from repro.wrapper.design import WrapperDesign

DEFAULT_SAMPLES = 768

#: Bump whenever the sampling scheme or cost model changes: the value is
#: folded into the persistent analysis-cache fingerprint
#: (:mod:`repro.explore.cache`), so stale on-disk estimates are never
#: served after an estimator change.
ESTIMATOR_VERSION = "selective-sampled-1"


@dataclass(frozen=True)
class SliceStatistics:
    """Summary of a sampled estimate."""

    m: int
    code_width: int
    slices_per_pattern: int
    total_slices: int
    mean_cost: float
    total_codewords: int

    @property
    def compressed_bits(self) -> int:
        return self.total_codewords * self.code_width


def _mix_seed(seed: int, m: int, samples: int) -> int:
    """Stable seed mixing so each (core, m) pair gets its own stream."""
    value = (seed & 0xFFFFFFFF) * 0x9E3779B1
    value ^= (m * 0x85EBCA77) & 0xFFFFFFFFFFFF
    value ^= samples * 0xC2B2AE3D
    return value & 0x7FFFFFFFFFFFFFFF


def _sampled_target_groups(
    core: Core, design: WrapperDesign, samples: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Draw one design's sampled target bits and their group slots.

    Returns ``(targets, group_ids, num_groups)`` where ``targets[s]`` is
    the number of minority-symbol care bits of sample slice ``s`` and
    ``group_ids`` holds, slice by slice, the group slot of each such
    bit.  The random stream is deterministic in
    ``(core.seed, m, samples)`` and shared verbatim by the fast and
    reference accountings, so they differ only in arithmetic.
    """
    m = design.num_chains
    k, _ = code_parameters(m)
    si = design.scan_in_max
    num_groups = -(-m // k)

    active = design.active_inputs_per_slice()  # (si,)
    # Stratified slice indices over one pattern (patterns are i.i.d. in
    # the cube model, so sampling within a pattern suffices).
    picks = np.minimum(
        ((np.arange(samples) + 0.5) * si / samples).astype(np.int64), si - 1
    )
    active_sampled = active[picks]

    rng = np.random.default_rng(_mix_seed(core.seed, m, samples))
    care = rng.binomial(active_sampled, core.care_bit_density)
    ones = rng.binomial(care, core.one_fraction)
    zeros = care - ones
    targets = np.minimum(ones, zeros)

    # Scatter each slice's target bits over the slice's group structure.
    # Positions are drawn uniformly over the m slots; for the sparse
    # industrial regime (targets << m) the with-replacement approximation
    # is negligible, and the exact path covers the dense regime.
    group_ids = rng.integers(0, num_groups, size=int(targets.sum()))
    return targets, group_ids, num_groups


def estimate_slice_costs(
    core: Core,
    design: WrapperDesign,
    *,
    samples: int = DEFAULT_SAMPLES,
) -> np.ndarray:
    """Sampled per-slice codeword counts (length ``samples`` array)."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    si = design.scan_in_max
    if si == 0:
        # Unscanned core: a single degenerate "slice" per pattern is not
        # meaningful; callers guard on this, but stay safe.
        return np.ones(samples, dtype=np.int64)

    targets, group_ids, num_groups = _sampled_target_groups(
        core, design, samples
    )
    slice_ids = np.repeat(np.arange(samples), targets)
    per_group = np.bincount(
        slice_ids * num_groups + group_ids, minlength=samples * num_groups
    ).reshape(samples, num_groups)
    # min(count, 2) is the group cost: below GROUP_COPY_THRESHOLD (= 3)
    # every target bit costs one single-bit codeword, at or above it the
    # group is emitted as a 2-codeword group-copy.
    group_cost = np.minimum(per_group, 2)
    return 1 + group_cost.sum(axis=1)


def estimate_slice_costs_reference(
    core: Core,
    design: WrapperDesign,
    *,
    samples: int = DEFAULT_SAMPLES,
) -> np.ndarray:
    """Scalar reference for :func:`estimate_slice_costs`.

    Replays the identical random draws, then accounts the group costs
    with plain Python loops.  The differential suite holds the
    vectorized scatter/bincount accounting to this ground truth.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    if design.scan_in_max == 0:
        return np.ones(samples, dtype=np.int64)

    targets, group_ids, _ = _sampled_target_groups(core, design, samples)
    costs = np.empty(samples, dtype=np.int64)
    cursor = 0
    for index, count in enumerate(targets.tolist()):
        per_group: dict[int, int] = {}
        for group in group_ids[cursor : cursor + count].tolist():
            per_group[group] = per_group.get(group, 0) + 1
        cursor += count
        cost = 1
        for hits in per_group.values():
            cost += 2 if hits >= GROUP_COPY_THRESHOLD else hits
        costs[index] = cost
    return costs


def estimate_codewords(
    core: Core,
    design: WrapperDesign,
    *,
    samples: int = DEFAULT_SAMPLES,
) -> SliceStatistics:
    """Estimate the total codeword count for ``core`` under ``design``."""
    m = design.num_chains
    _, w = code_parameters(m)
    si = design.scan_in_max
    costs = estimate_slice_costs(core, design, samples=samples)
    total_slices = core.patterns * si
    mean_cost = float(costs.mean())
    return SliceStatistics(
        m=m,
        code_width=w,
        slices_per_pattern=si,
        total_slices=total_slices,
        mean_cost=mean_cost,
        total_codewords=int(round(mean_cost * total_slices)),
    )


def estimate_codewords_batch(
    core: Core,
    designs: Sequence[WrapperDesign],
    *,
    samples: int = DEFAULT_SAMPLES,
) -> list[SliceStatistics]:
    """Estimate every design of a core through single array passes.

    Bit-identical to calling :func:`estimate_codewords` per design (each
    design replays its own ``(core.seed, m, samples)`` random stream),
    but the group-cost accounting of all designs is fused: one bincount
    scatter and one clamped prefix sum over the concatenated group slots
    replace the per-design bincount/where/sum chain.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    with obs.span("kernel.estimate-batch", designs=len(designs)):
        return _estimate_codewords_batch(core, designs, samples)


def _estimate_codewords_batch(
    core: Core, designs: Sequence[WrapperDesign], samples: int
) -> list[SliceStatistics]:
    sample_ids = np.arange(samples)
    id_chunks: list[np.ndarray] = []
    spans: list[tuple[int, int]] = []  # (flat base, flat length) per design
    base = 0
    for design in designs:
        si = design.scan_in_max
        if si == 0:
            spans.append((base, 0))
            continue
        targets, group_ids, num_groups = _sampled_target_groups(
            core, design, samples
        )
        slice_ids = np.repeat(sample_ids, targets)
        id_chunks.append(base + slice_ids * num_groups + group_ids)
        length = samples * num_groups
        spans.append((base, length))
        base += length

    if id_chunks:
        flat_ids = np.concatenate(id_chunks)
        per_group = np.bincount(flat_ids, minlength=base)
        # Same group-copy clamp as estimate_slice_costs; the prefix sum
        # turns every design's total into two boundary lookups.
        running = np.concatenate(
            ([0], np.cumsum(np.minimum(per_group, 2), dtype=np.int64))
        )
    else:
        running = np.zeros(1, dtype=np.int64)

    stats: list[SliceStatistics] = []
    for design, (start, length) in zip(designs, spans):
        m = design.num_chains
        _, w = code_parameters(m)
        si = design.scan_in_max
        if si == 0:
            mean_cost = 1.0
        else:
            group_total = int(running[start + length] - running[start])
            mean_cost = (samples + group_total) / samples
        total_slices = core.patterns * si
        stats.append(
            SliceStatistics(
                m=m,
                code_width=w,
                slices_per_pattern=si,
                total_slices=total_slices,
                mean_cost=mean_cost,
                total_codewords=int(round(mean_cost * total_slices)),
            )
        )
    return stats
