"""Test cubes: partially specified scan stimulus patterns.

A *test cube* is a pattern whose bits are 0, 1 or X (unspecified).
Compression schemes like selective encoding exploit the X bits: only the
specified ("care") bits must be reproduced by the decompressor.

Cubes are stored densely as an ``int8`` array of shape
``(patterns, scan_in_bits)`` with the encoding ``0``, ``1`` and
``X = 2``.  The bit order matches
:meth:`repro.wrapper.design.WrapperDesign.scan_in_position_matrix`:
internal scan-chain cells first (chain by chain, shift order), then the
wrapper input cells.

The original netlists behind the paper's cores are unavailable, so cube
sets are synthesized with the per-core care-bit density and 1-fraction
(see DESIGN.md section 5); generation is deterministic in the core seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.soc.core import Core
from repro.wrapper.design import WrapperDesign

X: int = 2
"""Cell value marking an unspecified (don't-care) bit."""

#: Refuse to materialize cube arrays above this size; industrial-scale
#: cores must use the sampled estimator instead.
DENSE_CELL_LIMIT: int = 200_000_000


@dataclass(frozen=True)
class TestCubeSet:
    """A dense set of test cubes for one core."""

    __test__ = False  # "Test" prefix is domain vocabulary, not a pytest class

    core: Core
    bits: np.ndarray  # int8, shape (patterns, scan_in_bits), values {0, 1, X}

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits, dtype=np.int8)
        expected = (self.core.patterns, self.core.scan_in_bits)
        if bits.shape != expected:
            raise ValueError(
                f"cube array for {self.core.name} must have shape {expected}, "
                f"got {bits.shape}"
            )
        if bits.size and (bits.min() < 0 or bits.max() > X):
            raise ValueError("cube values must be 0, 1 or X(=2)")
        bits.setflags(write=False)
        object.__setattr__(self, "bits", bits)

    @property
    def patterns(self) -> int:
        return int(self.bits.shape[0])

    @property
    def bits_per_pattern(self) -> int:
        return int(self.bits.shape[1])

    @property
    def care_bits(self) -> int:
        """Number of specified bits across the whole cube set."""
        return int(np.count_nonzero(self.bits != X))

    @property
    def care_bit_density(self) -> float:
        """Measured fraction of specified bits."""
        if self.bits.size == 0:
            return 0.0
        return self.care_bits / self.bits.size

    @property
    def one_fraction(self) -> float:
        """Measured fraction of care bits that are logic 1."""
        care = self.care_bits
        if care == 0:
            return 0.0
        return int(np.count_nonzero(self.bits == 1)) / care

    def slices(self, design: WrapperDesign) -> np.ndarray:
        """Scan slices of every pattern under a wrapper design.

        Returns an ``int8`` array of shape ``(patterns, si, m)`` where
        entry ``[q, j, h]`` is the bit pattern ``q`` shifts on wrapper
        chain ``h`` in cycle ``j``.  Idle (pad) positions are X: they are
        free for the encoder, exactly like unspecified cube bits.
        """
        if design.core != self.core:
            raise ValueError("wrapper design belongs to a different core")
        matrix = design.scan_in_position_matrix()  # (si, m)
        flat = matrix.ravel()
        valid = flat >= 0
        out = np.full(
            (self.patterns, flat.size), X, dtype=np.int8
        )
        out[:, valid] = self.bits[:, flat[valid]]
        return out.reshape(self.patterns, *matrix.shape)

    def is_compatible_with(self, other: np.ndarray) -> bool:
        """True if ``other`` (fully specified) honors every care bit."""
        other = np.asarray(other)
        if other.shape != self.bits.shape:
            return False
        care = self.bits != X
        return bool(np.array_equal(other[care], self.bits[care]))


def generate_cubes(core: Core, *, patterns: int | None = None) -> TestCubeSet:
    """Synthesize a deterministic cube set for ``core``.

    Care bits are placed i.i.d. with probability ``core.care_bit_density``
    and take value 1 with probability ``core.one_fraction``.  Generation
    is deterministic in ``core.seed``.  ``patterns`` overrides the core's
    test-set size (useful for scaled-down experiments).
    """
    count = core.patterns if patterns is None else patterns
    if count < 1:
        raise ValueError(f"patterns must be >= 1, got {count}")
    cells = count * core.scan_in_bits
    if cells > DENSE_CELL_LIMIT:
        raise MemoryError(
            f"{core.name}: {cells} cube cells exceed the dense limit "
            f"({DENSE_CELL_LIMIT}); use repro.compression.estimator instead"
        )
    rng = np.random.default_rng(core.seed)
    shape = (count, core.scan_in_bits)
    care = rng.random(shape) < core.care_bit_density
    ones = rng.random(shape) < core.one_fraction
    bits = np.full(shape, X, dtype=np.int8)
    bits[care & ones] = 1
    bits[care & ~ones] = 0
    if count == core.patterns:
        return TestCubeSet(core=core, bits=bits)
    scaled = core.with_patterns(count)
    return TestCubeSet(core=scaled, bits=bits)


def fill_random(cubes: TestCubeSet, seed: int = 0) -> np.ndarray:
    """Random-fill the X bits (the no-compression ATE image).

    Returns a fully specified ``{0,1}`` array of the cube shape.  Used by
    the run-length baseline codecs, which operate on filled streams.
    """
    rng = np.random.default_rng(seed)
    filled = cubes.bits.copy()
    xs = filled == X
    filled[xs] = rng.integers(0, 2, size=int(xs.sum()), dtype=np.int8)
    return filled


def fill_zero(cubes: TestCubeSet) -> np.ndarray:
    """Zero-fill the X bits (the fill run-length coders assume)."""
    filled = cubes.bits.copy()
    filled[filled == X] = 0
    return filled
