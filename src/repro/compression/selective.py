"""Selective encoding of scan slices (reconstruction of the paper's ref [14]).

The decompressor for a core receives ``w``-bit codewords, one per ATE
cycle, and reconstructs ``m``-bit scan slices (``w < m``) that feed the
``m`` wrapper chains.  The code width is fixed by the slice width::

    k = ceil(log2(m + 1))        # payload bits
    w = k + 2                    # plus 2 control bits

Each slice is encoded independently as a sequence of codewords.  Per
slice the encoder:

1. counts the specified 0s and 1s; the *target* symbol is the minority
   care symbol (ties favor 1) and the *fill* symbol is its complement;
   X bits and majority-symbol bits are produced by filling, for free;
2. splits the slice into ``ceil(m / k)`` groups of ``k`` bit positions;
   a group holding three or more target bits is cheaper to transmit
   literally (*group-copy mode*: a GROUP codeword carrying the index of
   the group's first bit, then a data codeword carrying the ``k`` literal
   bits) than bit-by-bit;
3. encodes every remaining target bit in *single-bit mode* (one codeword
   carrying the bit index -- the paper's example: target 1 at index 3 of
   slice ``XXX1000`` is encoded as the index value 3);
4. terminates the slice with an END codeword whose payload carries the
   fill symbol.

Codeword layout (2 control bits + ``k`` payload bits)::

    control 00  SINGLE0  payload = bit index; drive that bit to 0
    control 01  SINGLE1  payload = bit index; drive that bit to 1
    control 10  GROUP    payload = index of the group's first bit;
                         the next codeword's payload holds the k literal
                         data bits (MSB = lowest bit index)
    control 11  END      payload bit0 = fill symbol; ends the slice

The scheme is lossless on care bits: the decoder output is X-compatible
with the source slice (property-tested against
:mod:`repro.compression.decompressor`).  The cost accounting -- one
codeword per single-bit target, two per copied group, one END per slice --
is exactly what :func:`slice_costs` computes in vectorized form, and what
the sampled estimator reuses at industrial scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.compression.cubes import X

CONTROL_SINGLE0 = 0
CONTROL_SINGLE1 = 1
CONTROL_GROUP = 2
CONTROL_END = 3

#: A group is copied literally when it holds at least this many target
#: bits (two codewords beat three or more single-bit codewords).
GROUP_COPY_THRESHOLD = 3


def code_parameters(m: int) -> tuple[int, int]:
    """Payload width ``k`` and codeword width ``w`` for slice width ``m``.

    ``w = ceil(log2(m + 1)) + 2`` as stated in the paper (section 2).
    """
    if m < 1:
        raise ValueError(f"slice width must be >= 1, got {m}")
    k = max(1, math.ceil(math.log2(m + 1)))
    return k, k + 2


def slice_width_range(w: int, max_useful: int | None = None) -> range:
    """Slice widths ``m`` whose code width is exactly ``w``.

    Inverts ``w = ceil(log2(m+1)) + 2``: ``m in [2^(w-3), 2^(w-2) - 1]``
    (``w = 3`` maps to ``m = 1`` only).  ``max_useful`` optionally clips
    the upper end to the core's maximum useful wrapper-chain count.
    """
    if w < 3:
        raise ValueError(f"code width must be >= 3, got {w}")
    low = 1 if w == 3 else 2 ** (w - 3)
    high = 2 ** (w - 2) - 1
    if max_useful is not None:
        high = min(high, max_useful)
    return range(low, high + 1)


@dataclass(frozen=True)
class Codeword:
    """One ``w``-bit codeword: a 2-bit control field plus ``k`` payload bits."""

    control: int
    payload: int

    def __post_init__(self) -> None:
        if not 0 <= self.control <= 3:
            raise ValueError(f"control must be 0..3, got {self.control}")
        if self.payload < 0:
            raise ValueError(f"payload must be >= 0, got {self.payload}")

    def to_bits(self, w: int) -> tuple[int, ...]:
        """Bit tuple (MSB first): 2 control bits then ``w - 2`` payload bits."""
        k = w - 2
        if self.payload >= (1 << k):
            raise ValueError(f"payload {self.payload} does not fit in {k} bits")
        control_bits = ((self.control >> 1) & 1, self.control & 1)
        payload_bits = tuple((self.payload >> (k - 1 - i)) & 1 for i in range(k))
        return control_bits + payload_bits


@dataclass(frozen=True)
class CompressedStream:
    """Encoded form of a sequence of slices, plus bookkeeping."""

    m: int
    codewords: tuple[Codeword, ...]
    slice_count: int

    @property
    def code_width(self) -> int:
        return code_parameters(self.m)[1]

    @property
    def total_bits(self) -> int:
        return len(self.codewords) * self.code_width

    @property
    def cycles(self) -> int:
        """ATE cycles to deliver the stream (one codeword per cycle)."""
        return len(self.codewords)


def _classify_slice(slice_bits: np.ndarray) -> tuple[int, int, np.ndarray]:
    """Return (target symbol, fill symbol, target positions) for a slice."""
    ones = int(np.count_nonzero(slice_bits == 1))
    zeros = int(np.count_nonzero(slice_bits == 0))
    target = 1 if ones <= zeros else 0
    positions = np.flatnonzero(slice_bits == target)
    return target, 1 - target, positions


def encode_slice(slice_bits: Sequence[int] | np.ndarray) -> list[Codeword]:
    """Encode one ``m``-bit slice (values 0/1/X) into codewords."""
    bits = np.asarray(slice_bits, dtype=np.int8)
    if bits.ndim != 1 or bits.size < 1:
        raise ValueError("slice must be a non-empty 1-D array")
    m = int(bits.size)
    k, _ = code_parameters(m)
    target, fill, positions = _classify_slice(bits)
    single_control = CONTROL_SINGLE1 if target == 1 else CONTROL_SINGLE0

    words: list[Codeword] = []
    num_groups = -(-m // k)
    group_of = positions // k
    for g in range(num_groups):
        members = positions[group_of == g]
        if members.size >= GROUP_COPY_THRESHOLD:
            start = g * k
            literal = 0
            for offset in range(k):
                index = start + offset
                if index < m and bits[index] == target:
                    value = target
                else:
                    value = fill
                literal = (literal << 1) | value
            words.append(Codeword(CONTROL_GROUP, start))
            words.append(Codeword(0, literal))
        else:
            for index in members:
                words.append(Codeword(single_control, int(index)))
    words.append(Codeword(CONTROL_END, fill))
    return words


def encode_slices(slices: np.ndarray) -> CompressedStream:
    """Encode a batch of slices (shape ``(S, m)`` or ``(p, si, m)``)."""
    arr = np.asarray(slices, dtype=np.int8)
    if arr.ndim == 3:
        arr = arr.reshape(-1, arr.shape[-1])
    if arr.ndim != 2:
        raise ValueError("slices must be 2-D (S, m) or 3-D (p, si, m)")
    words: list[Codeword] = []
    for row in arr:
        words.extend(encode_slice(row))
    return CompressedStream(
        m=int(arr.shape[1]), codewords=tuple(words), slice_count=int(arr.shape[0])
    )


def slice_costs(slices: np.ndarray) -> np.ndarray:
    """Codeword count of every slice, vectorized (no codeword objects).

    Must agree exactly with :func:`slice_costs_reference` for every row
    (pinned by the differential suite); this kernel is what the
    design-space exploration and the sampled estimator are built on.
    """
    arr = np.asarray(slices, dtype=np.int8)
    if arr.ndim == 3:
        arr = arr.reshape(-1, arr.shape[-1])
    if arr.ndim != 2:
        raise ValueError("slices must be 2-D (S, m) or 3-D (p, si, m)")
    S, m = arr.shape
    k, _ = code_parameters(m)
    num_groups = -(-m // k)
    if num_groups * k != m:
        # Pad with X so m divides into whole groups; X counts as neither
        # symbol, exactly like unspecified cube bits.
        padded = np.full((S, num_groups * k), X, dtype=np.int8)
        padded[:, :m] = arr
    else:
        padded = arr
    groups = padded.reshape(S, num_groups, k)
    # Per-group symbol counts; a group holds at most k bits, so int16 is
    # ample and keeps the temporaries small.
    ones_group = (groups == 1).sum(axis=2, dtype=np.int16)
    zeros_group = (groups == 0).sum(axis=2, dtype=np.int16)
    ones = ones_group.sum(axis=1, dtype=np.int64)
    zeros = zeros_group.sum(axis=1, dtype=np.int64)
    target_is_one = ones <= zeros  # ties favor encoding the 1s
    target_group = np.where(target_is_one[:, None], ones_group, zeros_group)
    # min(count, 2) is the group cost: below GROUP_COPY_THRESHOLD (= 3)
    # every target bit costs one single-bit codeword, at or above it the
    # group is emitted as a 2-codeword group-copy.
    group_cost = np.minimum(target_group, 2)
    return 1 + group_cost.sum(axis=1, dtype=np.int64)


def slice_costs_reference(slices: np.ndarray) -> np.ndarray:
    """Scalar reference for :func:`slice_costs` via real codeword lists.

    Encodes every slice with :func:`encode_slice` and counts the
    codewords.  Slow but independently derived from the codec itself;
    the differential suite holds :func:`slice_costs` (and the fused
    kernels in :mod:`repro.compression.hotpath`) to this ground truth.
    """
    arr = np.asarray(slices, dtype=np.int8)
    if arr.ndim == 3:
        arr = arr.reshape(-1, arr.shape[-1])
    if arr.ndim != 2:
        raise ValueError("slices must be 2-D (S, m) or 3-D (p, si, m)")
    return np.array([len(encode_slice(row)) for row in arr], dtype=np.int64)


def encoded_bits(slices: np.ndarray) -> int:
    """Total compressed bits for a batch of slices (``w`` per codeword)."""
    arr = np.asarray(slices, dtype=np.int8)
    m = int(arr.shape[-1])
    _, w = code_parameters(m)
    return int(slice_costs(arr).sum()) * w


def stream_to_bit_matrix(stream: CompressedStream) -> np.ndarray:
    """Render a stream as a ``(cycles, w)`` 0/1 matrix (the ATE image)."""
    w = stream.code_width
    out = np.zeros((len(stream.codewords), w), dtype=np.int8)
    for row, word in enumerate(stream.codewords):
        out[row] = word.to_bits(w)
    return out


def codewords_from_bit_matrix(matrix: np.ndarray) -> list[Codeword]:
    """Parse a ``(cycles, w)`` 0/1 matrix back into codewords."""
    arr = np.asarray(matrix, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] < 3:
        raise ValueError("bit matrix must be 2-D with width >= 3")
    k = arr.shape[1] - 2
    weights = 1 << np.arange(k - 1, -1, -1)
    controls = arr[:, 0] * 2 + arr[:, 1]
    payloads = arr[:, 2:] @ weights
    return [Codeword(int(c), int(p)) for c, p in zip(controls, payloads)]


def compression_ratio(raw_bits: int, compressed_bits: int) -> float:
    """Volume reduction factor ``raw / compressed`` (inf when free)."""
    if compressed_bits <= 0:
        return math.inf
    return raw_bits / compressed_bits


def iter_slice_streams(
    slices: Iterable[np.ndarray],
) -> Iterable[list[Codeword]]:
    """Lazily encode an iterable of slices (memory-bounded pipelines)."""
    for row in slices:
        yield encode_slice(row)
