"""Frequency-directed run-length (FDR) coding (ablation baseline).

FDR (Chandra & Chakrabarty) assigns variable-length codewords to runs of
0s terminated by a 1, with group ``A_k`` covering run lengths
``2^k - 2 .. 2^(k+1) - 3`` (``A_1 = {0, 1}``, ``A_2 = {2..5}``, ...).  A
run in group ``A_k`` costs ``2k`` bits: a ``k``-bit prefix (``k-1`` ones
followed by a zero) and a ``k``-bit tail giving the offset within the
group.  Short runs -- which dominate in test sets with moderate care
density -- therefore get short codewords.

Like :mod:`repro.compression.golomb`, this coder exists to benchmark the
co-optimization flow against a different codec family (ablation A2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.runlength import zero_run_lengths


def _group_of(run_length: int) -> int:
    """Group index ``k`` with ``2^k - 2 <= run_length <= 2^(k+1) - 3``.

    Computed with integer bit arithmetic: the former float
    ``floor(log2(L + 2))`` rounds up for ``L + 2`` just below a power of
    two once the mantissa runs out of bits (e.g. ``L = 2**53 - 3``),
    assigning the run one group too high.
    """
    if run_length < 0:
        raise ValueError("run length must be >= 0")
    return (run_length + 2).bit_length() - 1


def run_groups(run_lengths: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_group_of` over an int64 run-length array.

    ``frexp`` recovers ``floor(log2)`` exactly for values that convert
    to float without rounding; the fix-up below catches values just
    under a power of two whose conversion rounded up (the same boundary
    the scalar float version got wrong).
    """
    values = np.asarray(run_lengths, dtype=np.int64) + 2
    groups = np.frexp(values.astype(np.float64))[1].astype(np.int64) - 1
    rounded_up = (np.uint64(1) << groups.astype(np.uint64)) > values.astype(
        np.uint64
    )
    return groups - rounded_up


@dataclass(frozen=True)
class FdrCode:
    """The (parameter-free) FDR coder."""

    def encode_run(self, length: int) -> list[int]:
        """Encode one run of ``length`` 0s followed by a 1."""
        if length < 0:
            raise ValueError("run length must be >= 0")
        k = _group_of(length)
        offset = length - (2**k - 2)
        prefix = [1] * (k - 1) + [0]
        tail = [(offset >> (k - 1 - i)) & 1 for i in range(k)]
        return prefix + tail

    def run_cost(self, length: int) -> int:
        return 2 * _group_of(length)

    def encode(self, data: np.ndarray) -> list[int]:
        """Encode a 0/1 stream; runs are extracted in one vectorized
        pass (differentially pinned to :meth:`encode_reference`)."""
        bits: list[int] = []
        for run in zero_run_lengths(data).tolist():
            bits.extend(self.encode_run(run))
        return bits

    def encode_reference(self, data: np.ndarray) -> list[int]:
        """Scalar reference for :meth:`encode` (per-bit Python loop)."""
        stream = np.asarray(data, dtype=np.int8).ravel()
        if stream.size and (stream.min() < 0 or stream.max() > 1):
            raise ValueError("FDR coding needs a fully specified 0/1 stream")
        bits: list[int] = []
        run = 0
        for value in stream:
            if value == 0:
                run += 1
            else:
                bits.extend(self.encode_run(run))
                run = 0
        if run:
            # Trailing zeros: encode the full run so the virtual
            # terminating 1 falls past the stream end (the decoder trims).
            bits.extend(self.encode_run(run))
        return bits

    def decode(self, bits: list[int], length: int) -> np.ndarray:
        out = np.zeros(length, dtype=np.int8)
        pos = 0
        cursor = 0
        n = len(bits)
        while cursor < n and pos < length:
            k = 1
            while cursor < n and bits[cursor] == 1:
                k += 1
                cursor += 1
            cursor += 1  # prefix terminator
            offset = 0
            for _ in range(k):
                offset = (offset << 1) | bits[cursor]
                cursor += 1
            run = (2**k - 2) + offset
            pos += run
            if pos < length:
                out[pos] = 1
                pos += 1
        return out

    def encoded_length(self, data: np.ndarray) -> int:
        """Compressed bit count without materializing the bit list.

        Validates the stream exactly like :meth:`encode`: X cells raise
        instead of being silently counted as zeros.
        """
        return int((2 * run_groups(zero_run_lengths(data))).sum())
