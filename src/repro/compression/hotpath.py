"""Fused exact-encoding kernels for the single-plan hot path.

The design-space exploration evaluates the selective-encoding codeword
count for *every* (code width, slice width) candidate of a core.  The
reference path materializes, per candidate, the dense slice tensor
``(patterns, si, m)`` (idle pads included) and runs
:func:`repro.compression.selective.slice_costs` over it -- roughly six
full passes over padded data per candidate, which profiling shows is
where a cold plan spends most of its time.

This kernel computes the same totals with two ideas:

1. the cube-side comparison masks ``bits == 1`` / ``bits == 0`` are
   computed *once per core* and shared by every candidate, instead of
   being re-derived from a freshly gathered padded slice tensor per
   candidate;
2. per candidate, every wrapper chain's scan-in sequence is a short
   list of *contiguous* stimulus-bit runs that land on *contiguous*
   slice indices of one chain
   (:meth:`repro.wrapper.design.WrapperDesign.scan_in_segments`), so
   the per-(pattern, group, slice) one/zero counts accumulate with one
   contiguous array-slice add per segment -- no gather, no pad cells,
   no ``reduceat``/``cumsum`` (both measured far below memcpy speed).

From the ``(2, patterns, groups, si)`` count tensor the rest is
arithmetic on small arrays: per-slice counts are the group sums, the
minority target symbol (ties favor 1) picks each group's target count
as its one count or its zero count, the group-copy rule caps a group
holding >= GROUP_COPY_THRESHOLD target bits at 2 codewords, and one END
codeword is charged per slice.

The result is bit-identical to the reference path -- pinned by
``tests/test_vectorized_differential.py`` on every benchmark SOC plus
fuzz seeds -- because both implement the exact cost model of
:func:`repro.compression.selective.encode_slice`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.compression.cubes import TestCubeSet
from repro.compression.selective import GROUP_COPY_THRESHOLD, code_parameters

# The arithmetic shortcut min(count, 2) below encodes the group-copy
# rule (2 codewords once a group holds >= GROUP_COPY_THRESHOLD target
# bits, one per bit below it) and is exact only while the threshold sits
# one above the copy cost.
assert GROUP_COPY_THRESHOLD == 3
from repro.wrapper.design import WrapperDesign


def exact_codeword_total(cubes: TestCubeSet, design: WrapperDesign) -> int:
    """Total selective-encoding codeword count for one wrapper design.

    Equals ``int(slice_costs(cubes.slices(design)).sum())`` without
    materializing the padded slice tensor.
    """
    return int(exact_codeword_totals(cubes, [design])[0])


def symbol_table(cubes: TestCubeSet) -> np.ndarray:
    """Shared per-core symbol table for :func:`exact_codeword_totals`.

    The one-mask and zero-mask of every pattern, transposed to
    ``(2, bits, patterns)`` so that a run of consecutive stimulus bits
    is a contiguous 2-D block per plane; each segment add in the kernel
    then collapses to two linear memory passes.  Callers that evaluate
    one core repeatedly (the DSE fills its tables width by width) should
    build this once and pass it back in.
    """
    bits = cubes.bits
    symbols = np.empty((2, bits.shape[1], bits.shape[0]), dtype=np.int8)
    symbols[0] = (bits == 1).T
    symbols[1] = (bits == 0).T
    return symbols


def exact_codeword_totals(
    cubes: TestCubeSet,
    designs: Sequence[WrapperDesign],
    *,
    symbols: np.ndarray | None = None,
) -> np.ndarray:
    """Total codeword count per design, sharing one pass of core tables.

    Returns an int64 array aligned with ``designs``.  Every design must
    belong to ``cubes.core``.  ``symbols`` optionally reuses a cached
    :func:`symbol_table` of the same cube set.
    """
    for design in designs:
        if design.core != cubes.core:
            raise ValueError("wrapper design belongs to a different core")
    totals = np.zeros(len(designs), dtype=np.int64)
    if not designs:
        return totals
    bits = cubes.bits
    if bits.shape[0] == 0 or bits.shape[1] == 0:
        return totals
    if symbols is None:
        symbols = symbol_table(cubes)
    elif symbols.shape != (2, bits.shape[1], bits.shape[0]):
        raise ValueError("symbol table does not match the cube set")

    with obs.span("kernel.exact-totals", designs=len(designs)):
        for index, design in enumerate(designs):
            totals[index] = _design_total(symbols, design)
    return totals


def _design_total(symbols: np.ndarray, design: WrapperDesign) -> int:
    """Codeword total for one design from the shared symbol masks."""
    patterns = symbols.shape[2]
    si = design.scan_in_max
    if si == 0:
        return 0
    m = design.num_chains
    k, _ = code_parameters(m)
    num_groups = -(-m // k)

    # counts[0/1, g, s]: per (group, slice) one/zero counts of every
    # pattern over the active cells.  A group never holds more than
    # k < 128 chains, so int8 cannot overflow.  Idle pads contribute
    # nothing by construction -- they are never enumerated.  Both sides
    # of each segment add are contiguous blocks per symbol plane (slice
    # runs are contiguous inside a group plane, bit runs inside the
    # symbol table), so every add is two streaming passes.
    counts = np.zeros((2, num_groups, si, patterns), dtype=np.int8)
    bit_start, seg_len, slice_start, seg_chain = design.scan_in_segments()
    group_of_chain = seg_chain // k
    for a, length, s0, g in zip(
        bit_start.tolist(),
        seg_len.tolist(),
        slice_start.tolist(),
        group_of_chain.tolist(),
    ):
        counts[:, g, s0 : s0 + length] += symbols[:, a : a + length]

    # Per-slice counts are the group sums; m fits int16.  With a single
    # group the sums are views, not reductions.
    if num_groups == 1:
        slice_counts = counts[:, 0]
    else:
        slice_counts = counts.sum(axis=1, dtype=np.int16)
    # Minority care symbol per slice; ties favor encoding the 1s.  Must
    # happen before the clamp below: with one group ``slice_counts``
    # aliases ``counts``.
    target_is_one = slice_counts[0] <= slice_counts[1]
    # min(count, 2) is each group's cost: below GROUP_COPY_THRESHOLD
    # (= 3) every target bit is one codeword, at or above it the group
    # is emitted as a 2-codeword group-copy.  Clamp in place (counts is
    # dead after the slice sums), reduce the group axis, and only then
    # select per slice -- the selection runs on small per-slice arrays.
    np.minimum(counts, 2, out=counts)
    if num_groups == 1:
        clipped = counts[:, 0].astype(np.int16)
    else:
        clipped = counts.sum(axis=1, dtype=np.int16)
    group_cost = np.where(target_is_one, clipped[0], clipped[1])
    return patterns * si + int(group_cost.sum(dtype=np.int64))
