"""Golomb run-length coding of test data (ablation baseline).

Chandra & Chakrabarty's Golomb TDC encodes the 0-fill image of the test
cubes as runs of 0s terminated by a 1.  A run of length ``L`` with group
parameter ``b`` (a power of two here, making the remainder code trivial)
is encoded as ``floor(L / b)`` in unary (that many 1s and a terminating
0) followed by ``log2(b)`` bits of ``L mod b``.

The paper's related-work section cites this family of coders; the repo
uses it only to show (ablation A2) that the co-optimization flow is
agnostic to the codec while selective encoding remains the better fit
for wide slices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compression.runlength import zero_run_lengths


@dataclass(frozen=True)
class GolombCode:
    """Golomb coder with power-of-two group size ``b``."""

    b: int

    def __post_init__(self) -> None:
        if self.b < 1 or self.b & (self.b - 1):
            raise ValueError(f"b must be a positive power of two, got {self.b}")

    @property
    def remainder_bits(self) -> int:
        return int(math.log2(self.b))

    # ------------------------------------------------------------------

    def encode_run(self, length: int) -> list[int]:
        """Encode one run of ``length`` 0s followed by a 1."""
        if length < 0:
            raise ValueError("run length must be >= 0")
        quotient, remainder = divmod(length, self.b)
        bits = [1] * quotient + [0]
        bits.extend((remainder >> (self.remainder_bits - 1 - i)) & 1
                    for i in range(self.remainder_bits))
        return bits

    def encode(self, data: np.ndarray) -> list[int]:
        """Encode a 0/1 bit stream.

        A trailing run without a terminating 1 is closed by appending a
        virtual 1 (standard practice; the decoder trims it by length).
        Runs are extracted in one vectorized pass; differentially pinned
        to :meth:`encode_reference`.
        """
        bits: list[int] = []
        for run in zero_run_lengths(data).tolist():
            bits.extend(self.encode_run(run))
        return bits

    def encode_reference(self, data: np.ndarray) -> list[int]:
        """Scalar reference for :meth:`encode` (per-bit Python loop)."""
        stream = np.asarray(data, dtype=np.int8).ravel()
        if stream.size and (stream.min() < 0 or stream.max() > 1):
            raise ValueError("Golomb coding needs a fully specified 0/1 stream")
        bits: list[int] = []
        run = 0
        for value in stream:
            if value == 0:
                run += 1
            else:
                bits.extend(self.encode_run(run))
                run = 0
        if run:
            # Trailing zeros: encode the full run; the virtual terminating
            # 1 then falls just past the stream end and the decoder, which
            # trims by length, never materializes it.
            bits.extend(self.encode_run(run))
        return bits

    def decode(self, bits: list[int], length: int) -> np.ndarray:
        """Decode back to a bit stream of ``length`` bits."""
        out = np.zeros(length, dtype=np.int8)
        pos = 0
        cursor = 0
        n = len(bits)
        while cursor < n and pos < length:
            quotient = 0
            while cursor < n and bits[cursor] == 1:
                quotient += 1
                cursor += 1
            cursor += 1  # the unary terminator
            remainder = 0
            for _ in range(self.remainder_bits):
                remainder = (remainder << 1) | bits[cursor]
                cursor += 1
            run = quotient * self.b + remainder
            pos += run
            if pos < length:
                out[pos] = 1
                pos += 1
        return out

    # ------------------------------------------------------------------

    def encoded_length(self, data: np.ndarray) -> int:
        """Compressed bit count without materializing the bit list.

        Validates the stream exactly like :meth:`encode`: X cells raise
        instead of being silently counted as zeros.
        """
        return self.encoded_length_from_runs(zero_run_lengths(data))

    def encoded_length_from_runs(self, run_lengths: np.ndarray) -> int:
        """Compressed bit count for pre-extracted zero-run lengths."""
        quotients = run_lengths // self.b
        return int((quotients + 1 + self.remainder_bits).sum())


def best_golomb_parameter(
    data: np.ndarray, candidates: tuple[int, ...] = (2, 4, 8, 16, 32, 64)
) -> GolombCode:
    """Pick the group size minimizing the encoded length.

    The runs are extracted once and scored for every candidate in a
    single broadcast pass instead of re-scanning the stream per group
    size.
    """
    if not candidates:
        raise ValueError("need at least one candidate group size")
    codes = [GolombCode(b) for b in candidates]
    runs = zero_run_lengths(data)
    sizes = np.array([code.b for code in codes], dtype=np.int64)
    totals = (runs[None, :] // sizes[:, None]).sum(axis=1)
    totals += runs.size * (1 + np.log2(sizes).astype(np.int64))
    return codes[int(np.argmin(totals))]
