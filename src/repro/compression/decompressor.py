"""Cycle-level model of the on-chip selective-encoding decompressor.

The decompressor sits between the TAM and the core wrapper (paper,
Figure 1): it consumes one ``w``-bit codeword per ATE cycle and, when a
slice is complete (END codeword), drives the reconstructed ``m``-bit
slice onto the ``m`` wrapper chains and pulses one scan shift.

The hardware the paper describes is tiny -- a 5-flip-flop/23-gate
controller plus a ``w``-to-``m`` mapper -- and this model mirrors that
split: :class:`Decompressor` is the controller FSM (feed one codeword at
a time, observe emitted slices), while :func:`expand_stream` is the
batch convenience wrapper used by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.selective import (
    CONTROL_END,
    CONTROL_GROUP,
    CONTROL_SINGLE0,
    CONTROL_SINGLE1,
    Codeword,
    CompressedStream,
    code_parameters,
)


class DecodeError(ValueError):
    """Raised when the codeword stream is malformed."""


@dataclass
class Decompressor:
    """Stateful decoder: feed codewords, collect expanded slices.

    Parameters
    ----------
    m:
        Slice width (number of wrapper chains driven).
    """

    m: int
    _k: int = field(init=False)
    _singles: list[tuple[int, int]] = field(init=False, default_factory=list)
    _groups: list[tuple[int, int]] = field(init=False, default_factory=list)
    _pending_group_start: int | None = field(init=False, default=None)
    _cycles: int = field(init=False, default=0)
    _slices_emitted: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._k, _ = code_parameters(self.m)

    @property
    def cycles(self) -> int:
        """ATE cycles consumed so far (one per codeword)."""
        return self._cycles

    @property
    def slices_emitted(self) -> int:
        return self._slices_emitted

    @property
    def mid_slice(self) -> bool:
        """True if codewords of an unterminated slice are buffered."""
        return bool(
            self._singles or self._groups or self._pending_group_start is not None
        )

    def feed(self, word: Codeword) -> np.ndarray | None:
        """Consume one codeword; return a completed slice or ``None``."""
        self._cycles += 1
        if self._pending_group_start is not None:
            start = self._pending_group_start
            self._pending_group_start = None
            self._groups.append((start, word.payload))
            return None
        if word.control == CONTROL_GROUP:
            if word.payload >= self.m:
                raise DecodeError(
                    f"group start {word.payload} out of range for m={self.m}"
                )
            self._pending_group_start = word.payload
            return None
        if word.control in (CONTROL_SINGLE0, CONTROL_SINGLE1):
            if word.payload >= self.m:
                raise DecodeError(
                    f"bit index {word.payload} out of range for m={self.m}"
                )
            value = 1 if word.control == CONTROL_SINGLE1 else 0
            self._singles.append((word.payload, value))
            return None
        if word.control == CONTROL_END:
            fill = word.payload & 1
            return self._emit(fill)
        raise DecodeError(f"unknown control field {word.control}")

    def _emit(self, fill: int) -> np.ndarray:
        out = np.full(self.m, fill, dtype=np.int8)
        for start, literal in self._groups:
            for offset in range(self._k):
                index = start + offset
                if index < self.m:
                    out[index] = (literal >> (self._k - 1 - offset)) & 1
        for index, value in self._singles:
            out[index] = value
        self._singles.clear()
        self._groups.clear()
        self._slices_emitted += 1
        return out


def expand_stream(stream: CompressedStream) -> np.ndarray:
    """Expand a whole stream; returns slices of shape ``(S, m)``.

    Raises :class:`DecodeError` if the stream ends mid-slice or is
    otherwise malformed.
    """
    decoder = Decompressor(stream.m)
    slices: list[np.ndarray] = []
    for word in stream.codewords:
        emitted = decoder.feed(word)
        if emitted is not None:
            slices.append(emitted)
    if decoder.mid_slice:
        raise DecodeError("stream truncated: final slice not terminated")
    if len(slices) != stream.slice_count:
        raise DecodeError(
            f"stream declares {stream.slice_count} slices, decoded {len(slices)}"
        )
    if not slices:
        return np.empty((0, stream.m), dtype=np.int8)
    return np.stack(slices)


def slices_compatible(source: np.ndarray, decoded: np.ndarray) -> bool:
    """True if ``decoded`` honors every care bit of ``source`` (X free)."""
    from repro.compression.cubes import X

    source = np.asarray(source)
    decoded = np.asarray(decoded)
    if source.shape != decoded.shape:
        return False
    care = source != X
    return bool(np.array_equal(decoded[care], source[care]))
