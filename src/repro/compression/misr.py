"""Multiple-input signature register (MISR) response compaction.

The paper's Figure 1 shows an optional compactor behind the core's
wrapper chains and leaves response handling out of scope; this module
supplies that optional piece so end-to-end flows can also compact
responses.  A MISR is an LFSR that XORs an ``m``-bit response slice
into its state every cycle; after the test, the residual state (the
*signature*) is compared against the fault-free signature.  A faulty
response maps to the correct signature (aliases) with probability
``2^-width`` for a ``width``-bit MISR.

The implementation is a standard internal-XOR (Galois) MISR over a
user-supplied characteristic polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

#: Primitive polynomials (taps include bit 0) for common widths, given
#: as integers whose bit i is the coefficient of x^i, excluding x^width.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    8: 0b10001110,
    16: 0b0010000000001011,
    24: 0b000000000000000001100011,
    32: 0b00000000010000000000000011000101,
}


@dataclass
class Misr:
    """A ``width``-bit multiple-input signature register.

    Parameters
    ----------
    width:
        Register width in bits.
    polynomial:
        Feedback polynomial as an integer (bit i = coefficient of x^i,
        the implicit leading x^width term excluded).  Defaults to a
        primitive polynomial when the width has one on file.
    """

    width: int
    polynomial: int | None = None
    _state: int = field(init=False, default=0)
    _slices: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.polynomial is None:
            try:
                self.polynomial = PRIMITIVE_POLYNOMIALS[self.width]
            except KeyError:
                raise ValueError(
                    f"no default polynomial for width {self.width}; "
                    f"supply one (defaults exist for "
                    f"{sorted(PRIMITIVE_POLYNOMIALS)})"
                ) from None
        if not 0 < self.polynomial < (1 << self.width):
            raise ValueError("polynomial must fit the register width")

    # ------------------------------------------------------------------

    @property
    def state(self) -> int:
        return self._state

    @property
    def slices_absorbed(self) -> int:
        return self._slices

    def reset(self, seed: int = 0) -> None:
        if not 0 <= seed < (1 << self.width):
            raise ValueError("seed must fit the register width")
        self._state = seed
        self._slices = 0

    def absorb(self, response_slice: Sequence[int] | np.ndarray) -> None:
        """Clock in one response slice (at most ``width`` bits)."""
        bits = np.asarray(response_slice, dtype=np.int64)
        if bits.ndim != 1 or bits.size > self.width:
            raise ValueError(
                f"slice must be 1-D with at most {self.width} bits"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("response bits must be 0/1")
        word = 0
        for bit in bits:
            word = (word << 1) | int(bit)
        # Galois step: shift, fold the carry through the polynomial,
        # then XOR the parallel input.
        carry = (self._state >> (self.width - 1)) & 1
        self._state = ((self._state << 1) & ((1 << self.width) - 1))
        if carry:
            self._state ^= self.polynomial
        self._state ^= word
        self._slices += 1

    def absorb_stream(self, slices: Iterable[Sequence[int]]) -> None:
        for row in slices:
            self.absorb(row)

    def signature(self) -> int:
        return self._state

    # ------------------------------------------------------------------

    @property
    def aliasing_probability(self) -> float:
        """Asymptotic probability a faulty stream matches the good
        signature: ``2^-width``."""
        return 2.0 ** -self.width


def signature_of(
    slices: np.ndarray, *, width: int = 16, polynomial: int | None = None, seed: int = 0
) -> int:
    """Convenience: the signature of a full response array ``(S, m)``."""
    misr = Misr(width=width, polynomial=polynomial)
    misr.reset(seed)
    misr.absorb_stream(np.asarray(slices, dtype=np.int64))
    return misr.signature()
