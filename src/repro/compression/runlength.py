"""Shared zero-run extraction for the run-length codecs.

Golomb and FDR both encode a fully specified 0/1 stream as the sequence
of its maximal 0-runs, each terminated by a 1 (a trailing unterminated
run is closed by a virtual 1 that the decoder trims by length).  This
module holds the single vectorized run extractor both codecs build on,
so the encoders, the closed-form ``encoded_length`` accountings and the
batched parameter sweep all agree on one definition of "the runs".

Historical note: the codecs' ``encoded_length`` methods used to skip the
0/1 validation their ``encode`` methods perform, silently treating
don't-care (X = 2) cells as non-1 -- i.e. as zeros -- and returning a
length for streams ``encode`` rejects.  Centralizing extraction here
closed that contract gap (see ``tests/test_codec_properties.py``).
"""

from __future__ import annotations

import numpy as np


def zero_run_lengths(data: np.ndarray) -> np.ndarray:
    """Lengths of the maximal 0-runs of a 0/1 stream, in stream order.

    Every run terminated by a 1 is reported (including empty runs
    between adjacent 1s); a trailing run without a terminating 1 is
    reported only when non-empty, matching the encoders' virtual
    terminator convention.  Raises ``ValueError`` when the stream holds
    anything but 0s and 1s -- don't-care bits must be filled first.
    """
    stream = np.asarray(data, dtype=np.int8).ravel()
    if stream.size == 0:
        return np.zeros(0, dtype=np.int64)
    if stream.min() < 0 or stream.max() > 1:
        raise ValueError("run-length coding needs a fully specified 0/1 stream")
    ones = np.flatnonzero(stream == 1)
    if ones.size == 0:
        return np.array([stream.size], dtype=np.int64)
    starts = np.concatenate(([-1], ones))
    runs = np.diff(starts) - 1
    tail = stream.size - 1 - int(ones[-1])
    if tail:
        runs = np.concatenate((runs, [tail]))
    return runs.astype(np.int64)
