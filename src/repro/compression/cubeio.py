"""Test-cube import/export (extension).

Users with real ATPG data should not be limited to the synthetic cube
generator.  Two interchange formats:

* **`.npz`** -- compact binary (numpy archive) carrying the cube array
  plus the core's structural metadata, written/read losslessly;
* **pattern text** -- one pattern per line of ``0``/``1``/``X``
  characters (the common textbook/STIL-flattened form), with ``#``
  comments; structural metadata comes from the accompanying
  :class:`~repro.soc.core.Core`.

Loaded cube sets plug into the exact analysis path via
``CoreAnalysis(core, cubes=...)`` / ``analysis_for(core, cubes=...)``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.compression.cubes import TestCubeSet, X
from repro.soc.core import Core

_CHAR_TO_VALUE = {"0": 0, "1": 1, "X": X, "x": X, "-": X}
_VALUE_TO_CHAR = {0: "0", 1: "1", X: "X"}


def save_cubes_npz(cubes: TestCubeSet, path: str | os.PathLike) -> None:
    """Write a cube set (bits + core metadata) to a ``.npz`` archive."""
    core = cubes.core
    np.savez_compressed(
        path,
        bits=np.asarray(cubes.bits, dtype=np.int8),
        name=np.array(core.name),
        inputs=np.array(core.inputs),
        outputs=np.array(core.outputs),
        bidirs=np.array(core.bidirs),
        scan_chain_lengths=np.array(core.scan_chain_lengths, dtype=np.int64),
        patterns=np.array(core.patterns),
        care_bit_density=np.array(core.care_bit_density),
        one_fraction=np.array(core.one_fraction),
        seed=np.array(core.seed),
        gates=np.array(core.gates),
    )


def load_cubes_npz(path: str | os.PathLike) -> TestCubeSet:
    """Read a cube set written by :func:`save_cubes_npz`."""
    with np.load(path, allow_pickle=False) as data:
        core = Core(
            name=str(data["name"]),
            inputs=int(data["inputs"]),
            outputs=int(data["outputs"]),
            bidirs=int(data["bidirs"]),
            scan_chain_lengths=tuple(int(x) for x in data["scan_chain_lengths"]),
            patterns=int(data["patterns"]),
            care_bit_density=float(data["care_bit_density"]),
            one_fraction=float(data["one_fraction"]),
            seed=int(data["seed"]),
            gates=int(data["gates"]),
        )
        bits = np.asarray(data["bits"], dtype=np.int8)
    return TestCubeSet(core=core, bits=bits)


def format_patterns(cubes: TestCubeSet) -> str:
    """Render cubes as pattern text: one 0/1/X line per pattern."""
    lines = [f"# {cubes.core.name}: {cubes.patterns} patterns x "
             f"{cubes.bits_per_pattern} bits"]
    for row in np.asarray(cubes.bits):
        lines.append("".join(_VALUE_TO_CHAR[int(v)] for v in row))
    return "\n".join(lines) + "\n"


def parse_patterns(core: Core, text: str) -> TestCubeSet:
    """Parse pattern text against a core description.

    The line count must equal ``core.patterns`` and each line's length
    must equal ``core.scan_in_bits``; characters outside ``01Xx-`` are
    rejected with the offending line number.
    """
    rows: list[list[int]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        values = []
        for ch in line:
            try:
                values.append(_CHAR_TO_VALUE[ch])
            except KeyError:
                raise ValueError(
                    f"line {line_no}: invalid pattern character {ch!r}"
                ) from None
        if len(values) != core.scan_in_bits:
            raise ValueError(
                f"line {line_no}: pattern has {len(values)} bits, core "
                f"{core.name} needs {core.scan_in_bits}"
            )
        rows.append(values)
    if len(rows) != core.patterns:
        raise ValueError(
            f"found {len(rows)} patterns, core {core.name} declares "
            f"{core.patterns}"
        )
    return TestCubeSet(core=core, bits=np.asarray(rows, dtype=np.int8))


def write_patterns(cubes: TestCubeSet, path: str | os.PathLike) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_patterns(cubes))


def read_patterns(core: Core, path: str | os.PathLike) -> TestCubeSet:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_patterns(core, handle.read())
