"""Flat per-core scan power estimation.

The model follows the standard weighted-transition reasoning: shift
power is proportional to the number of scan cells toggling per shift
cycle, and a cell toggles when consecutive bits of its shifted stream
differ.  For a stream whose bits are 1 with probability ``p1`` (i.i.d.,
the cube generator's model), the toggle rate is ``2 * p1 * (1 - p1)``.

The X-fill policy decides ``p1``:

* ``"random"`` -- ATE random-fill (the no-TDC default): every X becomes
  a coin flip, so ``p1 = d*f1 + (1-d)/2`` for care density ``d`` and
  care one-fraction ``f1``.  Near-maximal toggling.
* ``"zero"`` -- 0-fill: ``p1 = d*f1``.  The classic low-power fill.
* ``"majority"`` -- what the selective-encoding decompressor actually
  produces: each slice is filled with its majority care symbol, so only
  the minority care bits deviate; ``p1 ~= d * min(f1, 1-f1)``.  TDC is
  therefore also a power reduction technique, which ablation A6 in the
  benchmark harness quantifies.

The resulting per-core power is a dimensionless "toggle unit" (cells
toggling per cycle); budgets are expressed in the same unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.soc.core import Core
from repro.soc.soc import Soc

Fill = Literal["random", "zero", "majority"]


def toggle_rate(
    care_bit_density: float, one_fraction: float, fill: Fill = "random"
) -> float:
    """Probability that a scan cell toggles in one shift cycle."""
    d = care_bit_density
    f1 = one_fraction
    if fill == "random":
        p1 = d * f1 + (1.0 - d) * 0.5
    elif fill == "zero":
        p1 = d * f1
    elif fill == "majority":
        p1 = d * min(f1, 1.0 - f1)
    else:
        raise ValueError(f"unknown fill policy {fill!r}")
    return 2.0 * p1 * (1.0 - p1)


@dataclass(frozen=True)
class PowerModel:
    """Calibration of the flat power model.

    ``shift_weight`` scales shift toggling; ``io_weight`` accounts for
    wrapper-cell and TAM switching (small); power is flat over a core's
    test (the classic model used by power-constrained test scheduling).
    """

    shift_weight: float = 1.0
    io_weight: float = 0.2

    def core_power(self, core: Core, *, fill: Fill = "random") -> float:
        rate = toggle_rate(core.care_bit_density, core.one_fraction, fill)
        scan = self.shift_weight * core.scan_cells * rate
        io = self.io_weight * (core.wrapper_input_cells + core.wrapper_output_cells)
        return scan + io


def core_test_power(
    core: Core, *, fill: Fill = "random", model: PowerModel | None = None
) -> float:
    """Flat power of one core's test under the given X-fill policy."""
    return (model or PowerModel()).core_power(core, fill=fill)


def power_table(
    soc: Soc,
    *,
    compression: bool = False,
    model: PowerModel | None = None,
) -> dict[str, float]:
    """Per-core flat power for a whole SOC.

    With ``compression`` the decompressor's majority fill applies;
    without, the ATE image is random-filled.
    """
    fill: Fill = "majority" if compression else "random"
    return {
        core.name: core_test_power(core, fill=fill, model=model) for core in soc
    }
