"""Test power modeling (extension).

Scan testing dissipates far more power than functional operation, and
SOC test schedules are routinely power-constrained: the sum of the
power of concurrently tested cores must stay below a budget (the
classic flat-power model of Chou et al., used throughout the test-
scheduling literature, including the authors' own follow-up work on
power-aware SOC test scheduling).

:mod:`repro.power.model` estimates per-core scan power from the cube
statistics and the X-fill policy; the constrained scheduler that
consumes these estimates lives in :mod:`repro.core.timeline`.
"""

from repro.power.model import (
    PowerModel,
    core_test_power,
    power_table,
    toggle_rate,
)

__all__ = ["PowerModel", "core_test_power", "power_table", "toggle_rate"]
