"""Greedy test-set truncation under an ATE memory-depth constraint.

Given a planned architecture whose schedule does not fit the tester's
per-channel vector memory (depth = schedule cycles, one bit per channel
per cycle), repeatedly shave patterns from the core where a cycle of
schedule relief costs the least coverage, until the plan fits.

Model choices (documented simplifications):

* per-core test time scales linearly with its pattern count (exactly
  true in expectation for the i.i.d. cube model: codewords and shift
  cycles are per-pattern);
* the TAM partition and core-to-TAM assignment stay fixed (truncation
  is a late, post-layout decision; the wires are already routed);
* only cores on the *current bottleneck TAM* are candidates each step
  (shaving elsewhere cannot shorten the schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.optimizer import OptimizeResult
from repro.quality.coverage import CoverageModel, soc_quality
from repro.soc.soc import Soc


@dataclass(frozen=True)
class TruncationResult:
    """Outcome of truncating a plan to a memory depth."""

    pattern_counts: dict[str, int]
    makespan: int
    quality: float
    full_quality: float
    iterations: int
    fits: bool

    @property
    def quality_loss(self) -> float:
        return self.full_quality - self.quality


def truncate_for_depth(
    soc: Soc,
    plan: OptimizeResult,
    depth: int,
    *,
    models: Mapping[str, CoverageModel] | None = None,
    min_fraction: float = 0.1,
    step_fraction: float = 0.02,
) -> TruncationResult:
    """Shrink per-core pattern counts until the plan fits ``depth``.

    ``min_fraction`` floors every core's test set (shipping a core with
    almost no patterns is not a test); ``step_fraction`` is the granule
    of each greedy step relative to the full count.  Returns with
    ``fits=False`` when the floor is reached before the depth.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    if not 0.0 < min_fraction <= 1.0:
        raise ValueError("min_fraction must be in (0, 1]")
    if not 0.0 < step_fraction <= 1.0:
        raise ValueError("step_fraction must be in (0, 1]")
    if models is None:
        models = {c.name: CoverageModel.for_core(c) for c in soc}

    # Per-core: which TAM, full time, full patterns.
    slots = {s.config.core_name: s for s in plan.architecture.scheduled}
    full_time = {name: slot.config.test_time for name, slot in slots.items()}
    tam_of = {name: slot.tam_index for name, slot in slots.items()}
    full_patterns = {c.name: c.patterns for c in soc}
    floor = {
        name: max(1, int(round(min_fraction * full_patterns[name])))
        for name in full_patterns
    }
    step = {
        name: max(1, int(round(step_fraction * full_patterns[name])))
        for name in full_patterns
    }
    counts = dict(full_patterns)
    full_quality = soc_quality(soc, counts, models=models)

    def time_of(name: str) -> int:
        # Ceiling division: a truncated test still occupies whole
        # cycles, so scaled times must round *up*.  Rounding to nearest
        # let a plan "fit" a depth its integer schedule exceeds (e.g.
        # a 41.4-cycle load reported as makespan 41 against depth 41).
        return -(-full_time[name] * counts[name] // full_patterns[name])

    def loads() -> dict[int, int]:
        out: dict[int, int] = {t.index: 0 for t in plan.architecture.tams}
        for name in counts:
            out[tam_of[name]] += time_of(name)
        return out

    iterations = 0
    while True:
        tam_loads = loads()
        makespan = max(tam_loads.values())
        if makespan <= depth:
            break
        bottleneck = max(tam_loads, key=lambda t: tam_loads[t])
        candidates = [
            name
            for name in counts
            if tam_of[name] == bottleneck and counts[name] > floor[name]
        ]
        if not candidates:
            break  # the bottleneck TAM is already at its floor
        # Cheapest coverage per cycle saved: marginal coverage of the
        # last pattern divided by the per-pattern time.
        def cost_rate(name: str) -> float:
            per_pattern_time = full_time[name] / full_patterns[name]
            return models[name].marginal(counts[name]) / max(
                1e-12, per_pattern_time
            )

        victim = min(candidates, key=cost_rate)
        counts[victim] = max(floor[victim], counts[victim] - step[victim])
        iterations += 1

    final_loads = loads()
    makespan = max(final_loads.values())
    return TruncationResult(
        pattern_counts=counts,
        makespan=makespan,
        quality=soc_quality(soc, counts, models=models),
        full_quality=full_quality,
        iterations=iterations,
        fits=makespan <= depth,
    )
