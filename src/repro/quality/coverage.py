"""Fault-coverage model for pattern-count trade-offs.

ATPG coverage curves saturate: early patterns detect many faults, late
patterns few.  The standard parametric form is

    coverage(p) = c_max * (1 - exp(-p / tau))

where ``c_max`` is the achievable coverage of the full set and ``tau``
sets how quickly it saturates.  We calibrate ``tau`` so that the full
published pattern count reaches a configurable fraction (default 98%)
of ``c_max`` -- i.e. the last patterns of the shipped test set are
already in the flat tail, which is what makes truncation tolerable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.soc.core import Core
from repro.soc.soc import Soc


@dataclass(frozen=True)
class CoverageModel:
    """Saturating-exponential coverage curve for one core."""

    full_patterns: int
    max_coverage: float = 0.99
    saturation: float = 0.98  # coverage fraction reached at full_patterns

    def __post_init__(self) -> None:
        if self.full_patterns < 1:
            raise ValueError("full_patterns must be >= 1")
        if not 0.0 < self.max_coverage <= 1.0:
            raise ValueError("max_coverage must be in (0, 1]")
        if not 0.0 < self.saturation < 1.0:
            raise ValueError("saturation must be in (0, 1)")

    @property
    def tau(self) -> float:
        """Decay constant: coverage(full) = saturation * c_max."""
        return -self.full_patterns / math.log(1.0 - self.saturation)

    def coverage(self, patterns: int) -> float:
        """Fault coverage reached after ``patterns`` patterns."""
        if patterns < 0:
            raise ValueError("patterns must be >= 0")
        return self.max_coverage * (1.0 - math.exp(-patterns / self.tau))

    def marginal(self, patterns: int) -> float:
        """Coverage gained by the ``patterns``-th pattern (derivative)."""
        return self.max_coverage * math.exp(-patterns / self.tau) / self.tau

    @classmethod
    def for_core(cls, core: Core, **kwargs) -> "CoverageModel":
        return cls(full_patterns=core.patterns, **kwargs)


def soc_quality(
    soc: Soc,
    pattern_counts: Mapping[str, int],
    *,
    models: Mapping[str, CoverageModel] | None = None,
) -> float:
    """SOC test quality: scan-cell-weighted average core coverage.

    Weighting by scan cells approximates weighting by fault count, so
    big cores dominate the metric (as they dominate the defect budget).
    """
    if models is None:
        models = {c.name: CoverageModel.for_core(c) for c in soc}
    total_weight = 0.0
    accumulated = 0.0
    for core in soc:
        weight = max(1, core.scan_cells)
        count = pattern_counts.get(core.name, core.patterns)
        accumulated += weight * models[core.name].coverage(count)
        total_weight += weight
    return accumulated / total_weight if total_weight else 0.0
