"""Test quality versus tester memory (extension).

The paper's introduction motivates compression with tester memory
pressure.  When the full test set still does not fit the ATE, practice
*truncates* it -- drops the least valuable patterns -- trading fault
coverage for memory.  This subpackage implements the companion problem
studied by the same group ("Test data truncation for test quality
maximisation under ATE memory depth constraint", Larsson & Edbom):

* :mod:`repro.quality.coverage` -- a saturating-exponential fault-
  coverage model per core (the classic ATPG coverage curve);
* :mod:`repro.quality.truncation` -- greedy truncation of per-core
  pattern counts so a planned schedule fits a memory depth while
  losing the least coverage.
"""

from repro.quality.coverage import CoverageModel, soc_quality
from repro.quality.truncation import TruncationResult, truncate_for_depth

__all__ = [
    "CoverageModel",
    "soc_quality",
    "TruncationResult",
    "truncate_for_depth",
]
