"""Bit-level components for the architecture simulator.

:class:`WrapperChainRegister` models one wrapper chain as a shift
register; :class:`CoreSimulator` drives one core's whole test -- either
straight from the TAM (no TDC) or through a
:class:`~repro.compression.decompressor.Decompressor` instance -- and
verifies after every scan load that the chain registers hold exactly
the stimulus the core's test cubes specify.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.compression.cubes import TestCubeSet, X
from repro.compression.decompressor import Decompressor
from repro.compression.selective import encode_slice
from repro.core.architecture import CoreConfig
from repro.soc.core import Core
from repro.wrapper.design import WrapperDesign, design_wrapper


class SimulationError(AssertionError):
    """Raised when the simulated hardware contradicts the plan."""


class WrapperChainRegister:
    """A wrapper chain's scan path as a shift register.

    New bits enter at the scan-in port; once the register is full, the
    oldest bit falls off the scan-out end.  ``contents`` lists cells
    from the scan-in end (most recently shifted first).
    """

    def __init__(self, length: int):
        if length < 0:
            raise ValueError(f"register length must be >= 0, got {length}")
        self.length = length
        self._cells: deque[int] = deque(maxlen=length) if length else deque(maxlen=1)

    def shift_in(self, bit: int) -> None:
        if self.length:
            self._cells.appendleft(bit)

    @property
    def contents(self) -> list[int]:
        """Cell values, scan-in end first."""
        return list(self._cells) if self.length else []

    def loaded_sequence(self) -> list[int]:
        """The bits in shift order (first-shifted first).

        After a full load the register holds the last ``length`` bits
        shifted; in shift order that is ``reversed(contents)``.
        """
        return list(reversed(self.contents))


@dataclass(frozen=True)
class CoreSimResult:
    """Outcome of simulating one core's test."""

    core_name: str
    cycles: int
    patterns_applied: int
    codewords_consumed: int
    bits_streamed: int


class CoreSimulator:
    """Cycle-accurate execution of one scheduled core test."""

    def __init__(self, core: Core, config: CoreConfig, cubes: TestCubeSet):
        if cubes.core != core:
            raise ValueError("cube set belongs to a different core")
        self.core = core
        self.config = config
        self.cubes = cubes
        self.design: WrapperDesign = design_wrapper(core, config.wrapper_chains)
        self._matrix = self.design.scan_in_position_matrix()  # (si, m)
        self._slices = cubes.slices(self.design)  # (p, si, m)

    # ------------------------------------------------------------------

    def _fresh_registers(self) -> list[WrapperChainRegister]:
        return [WrapperChainRegister(L) for L in self.design.scan_in_lengths]

    def _verify_load(
        self, registers: list[WrapperChainRegister], pattern: int
    ) -> None:
        """Check chain contents against the cube's care bits."""
        si = self.design.scan_in_max
        for h, register in enumerate(registers):
            loaded = register.loaded_sequence()
            length = self.design.scan_in_lengths[h]
            if len(loaded) != length:
                raise SimulationError(
                    f"{self.core.name} chain {h}: loaded {len(loaded)} bits, "
                    f"expected {length}"
                )
            for depth, actual in enumerate(loaded):
                position = self._matrix[si - length + depth, h]
                if position < 0:
                    continue
                expected = self.cubes.bits[pattern, position]
                if expected != X and actual != expected:
                    raise SimulationError(
                        f"{self.core.name} pattern {pattern} chain {h} "
                        f"depth {depth}: got {actual}, cube wants {expected}"
                    )

    # ------------------------------------------------------------------

    def run(self) -> CoreSimResult:
        if self.config.uses_compression:
            return self._run_compressed()
        return self._run_uncompressed()

    def _run_uncompressed(self) -> CoreSimResult:
        """Shift the ATE image straight off the TAM, one slice per cycle."""
        si = self.design.scan_in_max
        so = self.design.scan_out_max
        shift_window = max(si, so)
        m = self.design.num_chains
        cycles = 0
        bits = 0
        for q in range(self.core.patterns):
            registers = self._fresh_registers()
            # Stimulus occupies the *last* si cycles of the window; the
            # leading (window - si) cycles exist only for response
            # shift-out and carry pad data.
            for j in range(shift_window):
                slice_index = j - (shift_window - si)
                for h in range(m):
                    if slice_index >= 0:
                        value = self._slices[q, slice_index, h]
                        bit = 0 if value == X else int(value)
                    else:
                        bit = 0
                    registers[h].shift_in(bit)
                cycles += 1
                bits += m
            self._verify_load(registers, q)
            cycles += 1  # capture
        cycles += min(si, so)  # flush the final response
        return CoreSimResult(
            core_name=self.core.name,
            cycles=cycles,
            patterns_applied=self.core.patterns,
            codewords_consumed=0,
            bits_streamed=bits,
        )

    def _run_compressed(self) -> CoreSimResult:
        """Stream codewords through the decompressor onto the chains."""
        si = self.design.scan_in_max
        so = self.design.scan_out_max
        m = self.design.num_chains
        decoder = Decompressor(m)
        cycles = 0
        bits = 0
        codewords = 0
        width = self.config.code_width or 0
        for q in range(self.core.patterns):
            registers = self._fresh_registers()
            emitted = 0
            for j in range(si):
                words = encode_slice(self._slices[q, j])
                for word in words:
                    out = decoder.feed(word)
                    cycles += 1
                    codewords += 1
                    bits += width
                    if out is not None:
                        emitted += 1
                        for h in range(m):
                            registers[h].shift_in(int(out[h]))
            if emitted != si:
                raise SimulationError(
                    f"{self.core.name} pattern {q}: decompressor emitted "
                    f"{emitted} slices, expected {si}"
                )
            self._verify_load(registers, q)
            cycles += 1  # capture
        cycles += min(si, so)
        return CoreSimResult(
            core_name=self.core.name,
            cycles=cycles,
            patterns_applied=self.core.patterns,
            codewords_consumed=codewords,
            bits_streamed=bits,
        )
