"""Whole-architecture simulation.

Executes every scheduled slot of a planned
:class:`~repro.core.architecture.TestArchitecture` with the bit-level
:class:`~repro.sim.components.CoreSimulator`, checking that

* slots on each TAM run back-to-back exactly as scheduled,
* each simulated core consumes exactly its planned number of cycles,
* the stimulus delivered to every wrapper chain honors the test cubes.

Simulation materializes each core's cubes, so it is meant for
d695-scale designs and custom SOCs (the same limit as the exact
analysis mode); industrial-scale plans are validated statistically by
the estimator cross-checks in the test suite instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.cubes import generate_cubes
from repro.core.architecture import TestArchitecture
from repro.sim.components import CoreSimResult, CoreSimulator, SimulationError
from repro.soc.soc import Soc

__all__ = ["SimulationError", "SimulationReport", "simulate_architecture"]


@dataclass(frozen=True)
class SimulationReport:
    """Aggregate outcome of simulating a full architecture."""

    soc_name: str
    total_cycles: int
    per_core: tuple[CoreSimResult, ...]
    bits_streamed: int

    @property
    def patterns_applied(self) -> int:
        return sum(r.patterns_applied for r in self.per_core)

    @property
    def codewords_consumed(self) -> int:
        return sum(r.codewords_consumed for r in self.per_core)


def simulate_architecture(
    soc: Soc,
    architecture: TestArchitecture,
    *,
    strict_times: bool = True,
) -> SimulationReport:
    """Execute a planned architecture bit by bit.

    With ``strict_times`` (default) a mismatch between a slot's planned
    length and its simulated cycle count raises
    :class:`SimulationError`; planners that use the sampled estimator
    produce approximate times, for which ``strict_times=False`` reports
    the simulated truth instead of failing.
    """
    if architecture.placement.value not in ("none", "per-core", "per-tam"):
        # The SOC-level virtual-TAM model couples all cores into one
        # stream; its codeword accounting is statistical, not bit-exact.
        raise ValueError(
            "simulation supports the no-TDC, per-core and per-TAM "
            f"architectures; got {architecture.placement.value}"
        )
    results: list[CoreSimResult] = []
    total = 0
    by_tam: dict[int, list] = {}
    for slot in architecture.scheduled:
        by_tam.setdefault(slot.tam_index, []).append(slot)

    for tam_index, slots in sorted(by_tam.items()):
        slots.sort(key=lambda s: s.start)
        clock = 0
        for slot in slots:
            if slot.start != clock:
                raise SimulationError(
                    f"TAM {tam_index}: slot for {slot.config.core_name} "
                    f"starts at {slot.start}, bus free at {clock}"
                )
            core = soc.core(slot.config.core_name)
            cubes = generate_cubes(core)
            sim = CoreSimulator(core, slot.config, cubes)
            result = sim.run()
            results.append(result)
            planned = slot.end - slot.start
            if strict_times and result.cycles != planned:
                raise SimulationError(
                    f"{core.name}: simulated {result.cycles} cycles, "
                    f"planned {planned}"
                )
            clock = slot.start + result.cycles
        total = max(total, clock)

    return SimulationReport(
        soc_name=architecture.soc_name,
        total_cycles=total,
        per_core=tuple(results),
        bits_streamed=sum(r.bits_streamed for r in results),
    )
