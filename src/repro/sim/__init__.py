"""Cycle-accurate simulation of planned test architectures.

The optimizer's test times come from an analytic model.  This package
*executes* a planned :class:`~repro.core.architecture.TestArchitecture`
bit by bit -- ATE codewords in, decompressor expansion, wrapper-chain
shifting, capture cycles -- and checks that

* every core's wrapper chains end each load with exactly the stimulus
  bits its test cubes specify (X-compatible), and
* the cycle count of every scheduled slot equals the planned one.

This closes the loop between the scheduling model and the bit-level
machinery; the integration suite simulates whole SOC plans.
"""

from repro.sim.components import WrapperChainRegister, CoreSimulator
from repro.sim.simulator import SimulationError, SimulationReport, simulate_architecture

__all__ = [
    "WrapperChainRegister",
    "CoreSimulator",
    "SimulationError",
    "SimulationReport",
    "simulate_architecture",
]
