#!/usr/bin/env python3
"""Hierarchical SOC planning (extension).

Run::

    python examples/hierarchical_soc.py

Builds a two-level design: the parent SOC embeds two pre-designed child
SOCs (each with its own cores, wrapped as mega-cores) beside three
ordinary cores.  The planner computes each child's test-time-vs-width
envelope by recursively planning it, then co-schedules children and
cores on the parent TAMs.
"""

from repro.soc.core import Core
from repro.soc.hierarchy import ChildSocCore, optimize_hierarchical
from repro.soc.soc import Soc


def leaf(name: str, chains: int, length: int, patterns: int, seed: int) -> Core:
    return Core(
        name=name,
        inputs=8,
        outputs=8,
        scan_chain_lengths=(length,) * chains,
        patterns=patterns,
        care_bit_density=0.03,
        one_fraction=0.3,
        seed=seed,
    )


def main() -> None:
    modem = Soc(
        name="modem",
        cores=(
            leaf("mdm-dfe", 16, 40, 60, 11),
            leaf("mdm-fec", 24, 30, 80, 12),
            leaf("mdm-ctrl", 6, 25, 40, 13),
        ),
    )
    gpu = Soc(
        name="gpu",
        cores=(
            leaf("gpu-sh0", 32, 35, 90, 21),
            leaf("gpu-sh1", 32, 35, 90, 22),
            leaf("gpu-tex", 20, 45, 70, 23),
            leaf("gpu-rop", 10, 30, 50, 24),
        ),
    )

    children = [ChildSocCore(modem), ChildSocCore(gpu)]
    print("child envelopes (test time at parent width grants):")
    for child in children:
        points = {w: child.test_time(w) for w in (4, 8, 12, 16)}
        row = ", ".join(f"w={w}: {t:,}" for w, t in points.items())
        print(f"  {child.name:>6}: {row}")
    print()

    top_cores = [
        leaf("cpu", 28, 40, 100, 31),
        leaf("dsp", 18, 35, 70, 32),
        leaf("io", 4, 20, 30, 33),
    ]

    for width in (16, 24, 32):
        plan = optimize_hierarchical(
            "bigchip", children + top_cores, width, compression=True
        )
        print(
            f"parent W={width:>2}: {plan.test_time:>9,} cycles on TAMs "
            f"{plan.tam_widths} "
            f"(children: {', '.join(plan.child_names)})"
        )
    print()

    plan = optimize_hierarchical("bigchip", children + top_cores, 24)
    print(plan.architecture.render_gantt())


if __name__ == "__main__":
    main()
