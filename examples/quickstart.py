#!/usr/bin/env python3
"""Quickstart: plan the d695 benchmark SOC with and without compression.

Run::

    python examples/quickstart.py

Loads the embedded d695 benchmark, co-optimizes its test architecture at
a 32-wire TAM budget in three modes (no TDC / per-core decompressors /
auto bypass), and prints the resulting schedules.
"""

import repro


def main() -> None:
    soc = repro.load_design("d695")
    print(soc.describe())
    print()

    width = 32
    for mode, label in (
        (False, "without compression (Figure 4(a) style)"),
        (True, "with per-core decompressors (the paper's proposal)"),
        ("auto", "auto: each core keeps its faster option"),
    ):
        plan = repro.optimize_soc(soc, width, compression=mode)
        print(f"--- {label} ---")
        print(
            f"test time: {plan.test_time} cycles | "
            f"TAM partition: {plan.tam_widths} | "
            f"ATE volume: {plan.test_data_volume / 1e6:.2f} Mbit | "
            f"planned in {plan.cpu_seconds:.2f} s "
            f"({plan.partitions_evaluated} partitions, {plan.strategy})"
        )
        print(plan.architecture.render_gantt())
        print()

    # Inspect one core's configuration in the auto plan.
    plan = repro.optimize_soc(soc, width, compression="auto")
    config = plan.architecture.config_for("s38417")
    if config.uses_compression:
        print(
            f"s38417 uses a decompressor: {config.code_width} TAM wires -> "
            f"{config.wrapper_chains} wrapper chains"
        )
    else:
        print(
            "s38417 bypasses compression (its cubes are too dense to pay "
            f"off); it uses {config.wrapper_chains} wrapper chains directly"
        )


if __name__ == "__main__":
    main()
