#!/usr/bin/env python3
"""Industrial flow: reproduce the paper's headline result on System4.

Run::

    python examples/industrial_flow.py

Plans the largest industrial system (12 cores, ~10 Gbit of raw test
data) at several TAM widths, with and without TDC, and reports the
test-time and volume reduction factors of the paper's Table 3 -- plus
the decompressor hardware bill and the ATE budget check the paper
motivates in its introduction (tester memory pressure).
"""

import repro
from repro.core.hardware import architecture_hardware_cost


def main() -> None:
    soc = repro.load_design("System4")
    print(
        f"{soc.name}: {len(soc)} industrial cores, "
        f"{soc.total_scan_cells:,} scan cells, "
        f"{soc.initial_test_data_volume / 1e9:.2f} Gbit raw test data"
    )
    print()

    header = (
        f"{'W_TAM':>6} {'tau_nc (cyc)':>14} {'tau_c (cyc)':>13} "
        f"{'time red.':>9} {'V_nc (Mbit)':>12} {'V_c (Mbit)':>11} {'vol red.':>8}"
    )
    print(header)
    print("-" * len(header))
    for width in (16, 32, 48, 64):
        plain = repro.optimize_soc(soc, width, compression=False)
        packed = repro.optimize_soc(soc, width, compression=True)
        print(
            f"{width:>6} {plain.test_time:>14,} {packed.test_time:>13,} "
            f"{plain.test_time / packed.test_time:>8.1f}x "
            f"{plain.test_data_volume / 1e6:>12.1f} "
            f"{packed.test_data_volume / 1e6:>11.1f} "
            f"{plain.test_data_volume / packed.test_data_volume:>7.1f}x"
        )
    print()

    # Detail of the W=32 compressed plan.
    packed = repro.optimize_soc(soc, 32, compression=True)
    print("compressed plan at W_TAM = 32:")
    print(packed.architecture.render_gantt())
    print()
    print("per-core decompressor configurations:")
    for slot in sorted(
        packed.architecture.scheduled, key=lambda s: s.config.core_name
    ):
        config = slot.config
        print(
            f"  {config.core_name:>7}: TAM{slot.tam_index} "
            f"w={config.code_width} -> m={config.wrapper_chains}, "
            f"{config.test_time:,} cycles, {config.volume / 1e6:.1f} Mbit"
        )

    cost = architecture_hardware_cost(packed.architecture)
    print(
        f"\ndecompressor hardware: {cost.gates:,} gates + "
        f"{cost.flip_flops:,} flip-flops "
        f"({100 * cost.area_fraction(soc.gates):.3f}% of the SOC)"
    )

    # The introduction's motivation: tester memory.  Check both plans
    # against a 20 MHz, 64 Mvector ATE.
    ate = repro.Ate(channels=32, memory_depth=64_000_000)
    plain = repro.optimize_soc(soc, 32, compression=False)
    for label, plan in (("no TDC", plain), ("with TDC", packed)):
        fit = ate.depth_for_schedule(plan.test_time)
        verdict = "fits" if fit.fits else "DOES NOT FIT"
        print(
            f"ATE check ({label}): {fit.required_depth:,} vectors needed, "
            f"{fit.available_depth:,} available -> {verdict}; "
            f"test application time {ate.seconds(plan.test_time) * 1e3:.1f} ms"
        )


if __name__ == "__main__":
    main()
