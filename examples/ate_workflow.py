#!/usr/bin/env python3
"""End-to-end ATE hand-off workflow.

Run::

    python examples/ate_workflow.py

The production-facing path through the library: exchange test cubes as
files, plan the SOC, check the tester, truncate if memory is short,
compare the bus-based transport alternative, and export the final plan
as JSON for downstream tooling.
"""

import pathlib
import tempfile

import repro
from repro.core.bus import optimize_bus
from repro.explore.dse import analysis_for
from repro.quality.truncation import truncate_for_depth
from repro.soc.core import Core
from repro.soc.soc import Soc


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Cubes as files: write the synthetic set out, read it back in,
    #    and hand the external cubes to the exact analysis.
    core = Core(
        name="dsp",
        inputs=24,
        outputs=24,
        scan_chain_lengths=(50,) * 20,
        patterns=120,
        care_bit_density=0.03,
        one_fraction=0.3,
        seed=5,
    )
    cubes = repro.generate_cubes(core)
    with tempfile.TemporaryDirectory() as tmp:
        npz = pathlib.Path(tmp) / "dsp.npz"
        txt = pathlib.Path(tmp) / "dsp.pat"
        repro.save_cubes_npz(cubes, npz)
        repro.write_patterns(cubes, txt)
        reloaded = repro.load_cubes_npz(npz)
        from_text = repro.read_patterns(core, txt)
    assert (reloaded.bits == cubes.bits).all()
    assert (from_text.bits == cubes.bits).all()
    analysis = analysis_for(core, cubes=reloaded)
    best = analysis.best_compressed_for_tam(10)
    print(
        f"1. cube files round-trip; external-cube analysis: "
        f"w={best.code_width}, m={best.m}, tau={best.test_time:,}"
    )

    # ------------------------------------------------------------------
    # 2. Plan a small SOC and check it against a tester.
    soc = Soc(
        name="product",
        cores=(
            core,
            Core(
                name="cpu",
                inputs=32,
                outputs=32,
                scan_chain_lengths=(40,) * 36,
                patterns=200,
                care_bit_density=0.02,
                one_fraction=0.3,
                seed=6,
            ),
            Core(
                name="io",
                inputs=10,
                outputs=10,
                scan_chain_lengths=(30, 28),
                patterns=50,
                care_bit_density=0.3,
                seed=7,
            ),
        ),
    )
    plan = repro.optimize_soc(soc, 16, compression="select")
    ate = repro.Ate(channels=16, memory_depth=6_000, clock_hz=25e6)
    fit = ate.depth_for_schedule(plan.test_time)
    print(
        f"2. plan: {plan.test_time:,} cycles on TAMs {plan.tam_widths}; "
        f"tester depth {ate.memory_depth:,} -> "
        f"{'fits' if fit.fits else 'does NOT fit'}"
    )

    # ------------------------------------------------------------------
    # 3. Memory is short: truncate for the depth and report the quality.
    if not fit.fits:
        result = truncate_for_depth(soc, plan, ate.memory_depth)
        kept = {n: result.pattern_counts[n] for n in soc.core_names}
        print(
            f"3. truncated to {result.makespan:,} cycles "
            f"(fits={result.fits}); quality {result.full_quality:.4f} -> "
            f"{result.quality:.4f}; patterns kept: {kept}"
        )

    # ------------------------------------------------------------------
    # 4. Alternative transport: one shared bus instead of TAMs.
    bus = optimize_bus(soc, 16, compression=True)
    print(
        f"4. shared 16-bit bus: {bus.test_time:,} cycles "
        f"(rates {bus.rates}, {bus.tightness:.2f}x its bandwidth bound) "
        f"vs {plan.test_time:,} on dedicated TAMs"
    )

    # ------------------------------------------------------------------
    # 5. Export the chosen plan for downstream tooling.
    payload = repro.result_to_json(plan)
    rebuilt = repro.architecture_from_json(payload)
    print(
        f"5. exported {len(payload):,} bytes of JSON; re-import checks out "
        f"(test time {rebuilt.test_time:,})"
    )


if __name__ == "__main__":
    main()
