#!/usr/bin/env python3
"""Power- and precedence-constrained test planning (extension).

Run::

    python examples/power_aware.py

Plans System2 under a shrinking flat-power budget, showing the
time/power trade-off, why compressed delivery (majority-fill slices)
relaxes the budget, and how precedence constraints reshape the
schedule.  Ends with an abort-on-first-fail analysis: given per-core
failure probabilities, reorder each TAM's queue to minimize the
expected session time on bad dies.
"""

import repro
from repro.core.abort_on_fail import expected_improvement
from repro.core.optimizer import optimize_soc_constrained
from repro.power.model import core_test_power, power_table
from repro.reporting.profile import render_power_profile, render_utilization


def main() -> None:
    soc = repro.load_design("System2")
    plain_power = power_table(soc, compression=False)
    packed_power = power_table(soc, compression=True)

    print("per-core flat scan power (toggle units):")
    for core in soc:
        print(
            f"  {core.name:>7}: random-fill {plain_power[core.name]:>9.0f} | "
            f"decompressor majority-fill {packed_power[core.name]:>7.0f}"
        )
    total = sum(plain_power.values())
    print(
        f"SOC totals: {total:.0f} (random fill) vs "
        f"{sum(packed_power.values()):.0f} (TDC fill) -- compression is "
        "also a power technique\n"
    )

    print("power budget sweep at W_TAM = 32 (no TDC):")
    for fraction in (1.0, 0.6, 0.45, 0.4):
        budget = total * fraction
        plan = optimize_soc_constrained(
            soc, 32, compression=False, power_budget=budget
        )
        print(
            f"  budget {fraction:>4.2f}x: {plan.test_time:>10,} cycles, "
            f"peak power {plan.peak_power:>8.0f}, "
            f"TAM idle {plan.tam_idle_cycles:,} cycles"
        )
    print()

    print("same budgets with TDC (majority fill barely notices them):")
    for fraction in (1.0, 0.4):
        plan = optimize_soc_constrained(
            soc, 32, compression=True, power_budget=total * fraction
        )
        print(
            f"  budget {fraction:>4.2f}x: {plan.test_time:>10,} cycles, "
            f"peak power {plan.peak_power:>8.0f}"
        )
    print()

    # Precedence: suppose ckt-4 repairs a fuse block that ckt-6 and
    # ckt-8 depend on, so their tests must wait for it.
    chained = optimize_soc_constrained(
        soc,
        32,
        compression=True,
        precedence=(("ckt-4", "ckt-6"), ("ckt-4", "ckt-8")),
    )
    free = optimize_soc_constrained(soc, 32, compression=True)
    print(
        f"precedence (ckt-4 before ckt-6/ckt-8): {chained.test_time:,} "
        f"cycles vs {free.test_time:,} unconstrained"
    )
    print(chained.architecture.render_gantt())
    print(render_utilization(chained.architecture))
    tight = optimize_soc_constrained(
        soc, 32, compression=False, power_budget=total * 0.45
    )
    print(
        render_power_profile(
            tight.architecture, plain_power, budget=total * 0.45
        )
    )
    print()

    # Abort-on-first-fail: yield learning says the big cores fail more.
    fail_prob = {
        core.name: min(0.4, 0.02 + core.scan_cells / 400_000) for core in soc
    }
    plan = repro.optimize_soc(soc, 32, compression=True)
    before, after, reordered = expected_improvement(
        plan.architecture, fail_prob
    )
    print(
        "abort-on-first-fail expected session time: "
        f"{before:,.0f} -> {after:,.0f} cycles "
        f"({100 * (1 - after / before):.1f}% saved by ratio-rule ordering; "
        f"makespan unchanged at {reordered.test_time:,})"
    )


if __name__ == "__main__":
    main()
