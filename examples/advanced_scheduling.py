#!/usr/bin/env python3
"""Advanced scheduling extensions: preemption, multi-frequency TAMs,
robustness, and the heuristic-vs-optimal gap.

Run::

    python examples/advanced_scheduling.py

Four short studies on the same three-core workload:

1. preemptive scheduling under a power budget (split a long, cool test
   around two short, hot ones);
2. multi-frequency TAMs (trade wires for scan clock within an ATE
   bandwidth budget);
3. robust planning when per-core test times carry +-15% uncertainty;
4. the list heuristic's gap to the exact branch-and-bound optimum.
"""

from repro.core.multifrequency import optimize_multifrequency
from repro.core.optimal import optimal_schedule
from repro.core.partition import iter_partitions, search_partitions
from repro.core.preemption import schedule_preemptive
from repro.core.robust import evaluate_under_uncertainty, robust_search
from repro.core.scheduler import schedule_cores
from repro.core.timeline import schedule_constrained
from repro.explore.dse import analysis_for
from repro.soc.core import Core


def build_cores() -> dict[str, Core]:
    # The two "hot" cores are small (few scanned elements), so their
    # test time saturates at narrow TAM widths -- extra wires are wasted
    # on them, but a faster scan clock still helps: the multi-frequency
    # study below exploits exactly that.
    specs = {
        "cool-long": (24, 60, 120, 0.02),
        "hot-a": (6, 30, 60, 0.05),
        "hot-b": (6, 30, 60, 0.05),
    }
    cores = {}
    for index, (name, (chains, length, patterns, density)) in enumerate(
        specs.items()
    ):
        cores[name] = Core(
            name=name,
            inputs=8,
            outputs=8,
            scan_chain_lengths=(length,) * chains,
            patterns=patterns,
            care_bit_density=density,
            one_fraction=0.3,
            seed=900 + index,
        )
    return cores


def main() -> None:
    cores = build_cores()
    names = list(cores)
    analyses = {name: analysis_for(core) for name, core in cores.items()}

    def time_of(name: str, width: int) -> int:
        return analyses[name].time_at_tam(width, compression=True)

    # ------------------------------------------------------------------
    print("1. preemption under a power budget (W = 12, two TAMs of 6)")
    power = {"cool-long": 2.0, "hot-a": 5.0, "hot-b": 5.0}
    budget = 7.5  # cool+hot fits; hot+hot does not
    plain = schedule_constrained(
        names, [6, 6], time_of, power_of=power, power_budget=budget
    )
    split = schedule_preemptive(
        names, [6, 6], time_of, power_of=power, power_budget=budget,
        max_segments=3,
    )
    print(
        f"   non-preemptive: {plain.makespan:,} cycles | "
        f"preemptive: {split.makespan:,} cycles "
        f"({split.preemption_count} split(s)), both peak <= {budget}"
    )
    print(
        "   (preemption never hurts; here the greedy non-preemptive "
        "schedule is already tight)"
    )

    # ------------------------------------------------------------------
    print("2. multi-frequency TAMs (bandwidth budget 12 ATE bits/cycle)")
    single = optimize_multifrequency(names, 12, time_of, ratios=(1,))
    multi = optimize_multifrequency(
        names, 12, time_of, ratios=(1, 2, 4), freq_limit={"cool-long": 2}
    )
    described = ", ".join(f"{t.width}w@{t.ratio}x" for t in multi.tams)
    print(
        f"   single-rate: {single.makespan:,} cycles on "
        f"{sum(t.width for t in single.tams)} wires | "
        f"multi-rate: {multi.makespan:,} cycles on {multi.total_wires} "
        f"wires ({described})"
    )

    # ------------------------------------------------------------------
    print("3. robustness to +-15% test-time uncertainty (W = 12)")
    nominal = search_partitions(names, 12, time_of)
    nominal_report = evaluate_under_uncertainty(
        names, nominal.outcome, time_of, epsilon=0.15
    )
    robust = robust_search(names, 12, time_of, epsilon=0.15)
    print(
        f"   nominal-optimal plan: {nominal_report.nominal:,} nominal, "
        f"{nominal_report.worst:,} worst-case "
        f"(regret {nominal_report.regret:.3f})"
    )
    print(
        f"   robust plan:          {robust.nominal_makespan:,} nominal, "
        f"{robust.worst_case_makespan:,} worst-case"
    )

    # ------------------------------------------------------------------
    print("4. heuristic vs exact optimum (W = 8)")
    exact = optimal_schedule(names, 8, time_of, max_parts=3)
    heuristic = min(
        schedule_cores(names, widths, time_of).makespan
        for widths in iter_partitions(8, 3)
    )
    print(
        f"   heuristic {heuristic:,} vs optimal {exact.makespan:,} "
        f"(ratio {heuristic / exact.makespan:.4f}, "
        f"{exact.nodes_explored} B&B nodes)"
    )


if __name__ == "__main__":
    main()
