#!/usr/bin/env python3
"""Explore one core's decompressor design space (Figures 2 and 3).

Run::

    python examples/explore_decompressor.py [core-name]

Sweeps the wrapper-chain count m at a fixed TAM width (default core
ckt-7 at w = 10, the paper's Figure 2), then the minimum test time per
TAM width (Figure 3), and prints ASCII plots of both non-monotonic
curves.  Finishes by encoding a small cube batch and expanding it
through the cycle-level decompressor model to show the machinery end to
end.
"""

import sys

import numpy as np

from repro.compression.decompressor import Decompressor
from repro.compression.selective import encode_slices
from repro.explore.dse import analysis_for
from repro.reporting.experiments import figure2_data, figure3_data
from repro.soc.industrial import industrial_core


def ascii_plot(xs, ys, width=64, height=12, label="") -> str:
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1
    rows = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - xs[0]) / max(1, xs[-1] - xs[0]) * (width - 1))
        row = int((hi - y) / span * (height - 1))
        rows[row][col] = "*"
    lines = [f"{label} (y: {lo:,} .. {hi:,})"]
    lines.extend("|" + "".join(r) + "|" for r in rows)
    lines.append(f" x: {xs[0]} .. {xs[-1]}")
    return "\n".join(lines)


def main() -> None:
    core_name = sys.argv[1] if len(sys.argv) > 1 else "ckt-7"

    fig2 = figure2_data(core_name, 10)
    print(
        ascii_plot(
            fig2.m_values,
            fig2.test_times,
            label=f"Figure 2 -- {core_name}: tau_c vs m at w=10",
        )
    )
    print(
        f"min tau = {fig2.tau_min:,} at m = {fig2.argmin_m} "
        f"(max m would be {fig2.m_values[-1]}); "
        f"spread (tau_max - tau_min)/tau_max = {100 * fig2.relative_spread:.1f}%"
    )
    print()

    fig3 = figure3_data(core_name, range(6, 15))
    print(
        ascii_plot(
            fig3.code_widths,
            fig3.test_times,
            label=f"Figure 3 -- {core_name}: min tau_c vs TAM width w",
        )
    )
    upticks = fig3.upticks()
    if upticks:
        print(f"non-monotonic: widening the TAM past w={upticks} *increases* tau")
    print()

    # End-to-end: encode a small batch of slices and replay them through
    # the decompressor FSM at the best (w, m) found for a narrow TAM.
    core = industrial_core(core_name)
    best = analysis_for(core).best_compressed_for_tam(10)
    print(
        f"best config on a 10-wire TAM: w={best.code_width}, m={best.m}, "
        f"{best.codewords:,} codewords, tau={best.test_time:,} cycles"
    )
    rng = np.random.default_rng(0)
    demo_m = 12
    slices = np.where(
        rng.random((4, demo_m)) < core.care_bit_density * 10,
        rng.integers(0, 2, (4, demo_m)),
        2,
    ).astype(np.int8)
    stream = encode_slices(slices)
    decoder = Decompressor(stream.m)
    print(
        f"\ndemo: {slices.shape[0]} slices of width {demo_m} -> "
        f"{stream.cycles} codewords of {stream.code_width} bits"
    )
    for word in stream.codewords:
        out = decoder.feed(word)
        if out is not None:
            print(f"  cycle {decoder.cycles:>3}: slice -> {''.join(map(str, out))}")


if __name__ == "__main__":
    main()
