#!/usr/bin/env python3
"""Bring your own design: write a .soc file, load it, and plan it.

Run::

    python examples/custom_soc.py

Shows the full external-user workflow: author an ITC'02-style ``.soc``
description for a three-core design, parse it, sweep TAM width budgets,
compare the three decompressor placements, and export the planned
architecture summary.
"""

import pathlib
import tempfile

import repro
from repro.core.architecture import architecture_summary
from repro.core.soclevel import optimize_soc_level_decompressor

DESIGN = """\
SocName my_chip
# A CPU-like core: many short chains, sparse ATPG cubes.
Module 1 cpu
  Inputs 96
  Outputs 64
  ScanChains 48 : 44 44 44 44 43 43 43 43 42 42 42 42 41 41 41 41 \
                  40 40 40 40 40 40 40 40 39 39 39 39 39 39 39 39 \
                  38 38 38 38 38 38 38 38 37 37 37 37 37 37 37 37
  Patterns 400
  CareBitDensity 0.02
  OneFraction 0.3
  Seed 1
End
# A DSP block: fewer, longer chains.
Module 2 dsp
  Inputs 48
  Outputs 48
  ScanChains 16 : 120 118 116 114 112 110 108 106 104 102 100 98 96 94 92 90
  Patterns 250
  CareBitDensity 0.03
  Seed 2
End
# A small dense legacy peripheral.
Module 3 uart
  Inputs 12
  Outputs 10
  ScanChains 2 : 40 38
  Patterns 80
  CareBitDensity 0.45
  Seed 3
End
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "my_chip.soc"
        path.write_text(DESIGN, encoding="utf-8")
        soc = repro.parse_soc_file(path)

    print(soc.describe())
    print()

    print("TAM width sweep (auto compression, each core keeps what pays):")
    for width in (8, 12, 16, 24, 32):
        plan = repro.optimize_soc(soc, width, compression="auto")
        compressed = sum(
            1 for s in plan.architecture.scheduled if s.config.uses_compression
        )
        print(
            f"  W={width:>2}: {plan.test_time:>8,} cycles, "
            f"TAMs {plan.tam_widths}, {compressed}/{len(soc)} cores compressed"
        )
    print()

    budget = 16
    print(f"decompressor placement comparison at a {budget}-wire budget:")
    plans = {
        "(a) no TDC": repro.optimize_soc(soc, budget, compression=False),
        "(c) per-core TDC": repro.optimize_soc(soc, budget, compression=True),
        "(b) per-TAM TDC": repro.optimize_per_tam(soc, budget),
        "soc-level TDC": optimize_soc_level_decompressor(soc, budget),
    }
    for label, plan in plans.items():
        print(
            f"  {label:<17}: {plan.test_time:>8,} cycles, "
            f"{plan.architecture.total_tam_width:>4} on-chip TAM wires, "
            f"{plan.architecture.ate_channels:>3} ATE channels"
        )
    print()

    best = repro.optimize_soc(soc, budget, compression="auto")
    print(architecture_summary(best.architecture))
    print(best.architecture.render_gantt())


if __name__ == "__main__":
    main()
