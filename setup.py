"""Setuptools shim.

The normal install path is ``pip install -e .`` (pyproject.toml carries
all metadata).  This file exists so that fully offline environments
without the ``wheel`` package can still do ``python setup.py develop``.
"""

from setuptools import setup

setup()
