"""Ablation A6 -- power-constrained scheduling and TDC's power bonus.

Two effects, both extensions of the paper:

1. a flat power budget trades test time for peak power (the classic
   power-constrained scheduling curve); and
2. the selective-encoding decompressor fills every slice with its
   majority symbol, so compressed delivery also *reduces shift power*
   versus the ATE's random-filled image -- TDC relaxes the very budget
   that throttles the schedule.
"""

from conftest import run_once

from repro.core.optimizer import optimize_soc_constrained
from repro.power.model import power_table
from repro.reporting.tables import format_table
from repro.soc.industrial import industrial_system


def _sweep():
    soc = industrial_system("System2")
    plain_power = power_table(soc, compression=False)
    packed_power = power_table(soc, compression=True)
    top = sum(plain_power.values())
    rows = []
    # The largest single core (ckt-6) is ~35% of the SOC's flat power,
    # so budgets below ~0.4x are infeasible under the flat model.
    for fraction in (1.0, 0.65, 0.5, 0.4):
        budget = top * fraction
        plain = optimize_soc_constrained(
            soc, 32, compression=False, power_budget=budget
        )
        packed = optimize_soc_constrained(
            soc, 32, compression=True, power_budget=budget
        )
        rows.append(
            {
                "fraction": fraction,
                "budget": budget,
                "plain_time": plain.test_time,
                "plain_peak": plain.peak_power,
                "packed_time": packed.test_time,
                "packed_peak": packed.peak_power,
            }
        )
    return rows, sum(plain_power.values()), sum(packed_power.values())


def test_power_constrained_tradeoff(benchmark, record):
    rows, plain_total, packed_total = run_once(benchmark, _sweep)
    record(
        "ablation_power.txt",
        format_table(
            [
                "budget (xSOC)",
                "tau no-TDC",
                "peak no-TDC",
                "tau TDC",
                "peak TDC",
                "TDC gain",
            ],
            [
                (
                    r["fraction"],
                    r["plain_time"],
                    round(r["plain_peak"], 1),
                    r["packed_time"],
                    round(r["packed_peak"], 1),
                    round(r["plain_time"] / r["packed_time"], 2),
                )
                for r in rows
            ],
            title=(
                "Ablation A6 -- power-constrained scheduling (System2, W=32); "
                f"total flat power {plain_total:.0f} (random fill) vs "
                f"{packed_total:.0f} (decompressor majority fill)"
            ),
        ),
    )

    # Majority fill cuts the SOC's total flat power by a large factor.
    assert packed_total < 0.25 * plain_total

    # Peaks respect every budget.
    for r in rows:
        assert r["plain_peak"] <= r["budget"] + 1e-6
        assert r["packed_peak"] <= r["budget"] + 1e-6

    # Tightening the budget never speeds anything up.
    plain_times = [r["plain_time"] for r in rows]
    packed_times = [r["packed_time"] for r in rows]
    assert all(b >= a for a, b in zip(plain_times, plain_times[1:]))
    assert all(b >= a for a, b in zip(packed_times, packed_times[1:]))

    # TDC keeps its advantage under every budget -- and because its
    # image is cooler, the advantage *grows* as the budget tightens.
    gains = [r["plain_time"] / r["packed_time"] for r in rows]
    assert all(g > 3.0 for g in gains)
    assert gains[-1] >= gains[0]
