"""Ablation A7 -- per-core compression-technique selection.

The authors' ATS'08 follow-up selects a compression technique per core
instead of fixing one SOC-wide.  This ablation sweeps care-bit density
and shows which of {none, selective encoding, dictionary} wins where,
plus the SOC-level effect of selection on d695 (whose dense ISCAS cores
defeat selective encoding).
"""

from conftest import run_once

from repro.core.optimizer import optimize_soc
from repro.explore.dse import analysis_for
from repro.explore.selection import select_technique
from repro.reporting.tables import format_table
from repro.soc.benchmarks import load_benchmark
from repro.soc.core import Core

DENSITIES = (0.01, 0.05, 0.15, 0.30, 0.60)


def _core_at(density: float) -> Core:
    return Core(
        name=f"sel-{density}",
        inputs=10,
        outputs=10,
        scan_chain_lengths=(30,) * 24,
        patterns=80,
        care_bit_density=density,
        one_fraction=0.4,
        seed=31,
    )


def _study():
    per_density = []
    for density in DENSITIES:
        analysis = analysis_for(_core_at(density))
        choice = select_technique(analysis, 8)
        per_density.append((density, choice))
    d695 = load_benchmark("d695")
    fixed = optimize_soc(d695, 24, compression=True)
    auto = optimize_soc(d695, 24, compression="auto")
    select = optimize_soc(d695, 24, compression="select")
    return per_density, fixed, auto, select


def test_technique_selection(benchmark, record):
    per_density, fixed, auto, select = run_once(benchmark, _study)

    rows = [
        (
            density,
            choice.technique,
            choice.test_time,
            choice.wrapper_chains,
            choice.hit_rate if choice.hit_rate is not None else "-",
        )
        for density, choice in per_density
    ]
    summary = format_table(
        ["care density", "winner", "test time", "m", "dict hit rate"],
        rows,
        title="Ablation A7 -- winning technique per care density (W=8)",
    )
    soc_rows = [
        ("selective forced", fixed.test_time),
        ("auto (bypass)", auto.test_time),
        ("select (3 techniques)", select.test_time),
    ]
    summary += "\n" + format_table(
        ["d695 @ W=24", "test time"],
        soc_rows,
        title="d695: SOC-level effect of per-core technique selection",
    )
    record("ablation_selection.txt", summary)

    # Sparse cores pick a compressor; very dense cores do not keep
    # selective encoding.
    winners = {density: choice.technique for density, choice in per_density}
    assert winners[0.01] in ("selective", "dictionary")
    assert winners[0.60] != "selective"

    # Selection can only help at the SOC level.
    assert select.test_time <= auto.test_time <= fixed.test_time

    # Every scheduled core records a legal technique.
    for slot in select.architecture.scheduled:
        assert slot.config.technique in ("none", "selective", "dictionary")
