"""Hot-path benchmark guard: artifact schema + never-slower regression.

Three layers of protection for the vectorized single-plan hot path:

* the committed ``BENCH_hotpath.json`` must validate against the
  ``bench-hotpath`` schema (via the shared validator in
  ``scripts/check_obs_artifacts.py``) and must record the PR's
  acceptance number -- a >= 5x cold-plan speedup on d695 with
  fast/scalar plans identical;
* the validator itself must reject malformed or inconsistent
  documents, so a broken bench run cannot record a green artifact;
* live never-slower checks: the vectorized kernels and the whole fast
  plan are re-timed here against the retained scalar stack, so a
  regression that erodes the speedup fails CI even before anyone
  regenerates the artifact.  (The margins are ~5-10x; the assertions
  only demand parity, so machine noise cannot flake them.)
"""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib
import time

import numpy as np
import pytest

from repro.compression.cubes import generate_cubes
from repro.compression.hotpath import exact_codeword_totals, symbol_table
from repro.compression.selective import slice_costs
from repro.core.partition import iter_partitions
from repro.core.scheduler import (
    TimeTable,
    schedule_cores,
    schedule_makespans_batch,
)
from repro.explore.dse import clear_analysis_cache
from repro.pipeline import RunConfig, plan
from repro.soc.industrial import load_design
from repro.wrapper.design import clear_wrapper_design_cache, design_wrapper

REPO = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO / "benchmarks" / "results" / "BENCH_hotpath.json"


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "check_obs_artifacts", REPO / "scripts" / "check_obs_artifacts.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validator = _load_validator()


@pytest.fixture(scope="module")
def artifact():
    with ARTIFACT.open(encoding="utf-8") as handle:
        return json.load(handle)


class TestCommittedArtifact:
    def test_validates_against_schema(self, artifact):
        summary = validator.check_bench_hotpath(artifact)
        assert summary["runs"] >= 1

    def test_records_target_speedup_on_d695(self, artifact):
        """The PR's acceptance number: >= 5x cold single-plan on d695."""
        summary = validator.check_bench_hotpath(artifact)
        assert "d695" in summary["speedups"]
        assert summary["speedups"]["d695"] >= 5.0

    def test_plans_recorded_identical(self, artifact):
        assert all(run["identical"] for run in artifact["runs"])

    def test_kernel_breakdown_present(self, artifact):
        by_design = {run["design"]: run for run in artifact["runs"]}
        exact = by_design["d695"]["kernel_seconds"]
        for kernel in (
            "kernel.exact-totals",
            "kernel.wrapper-batch",
            "kernel.schedule-batch",
        ):
            assert kernel in exact, kernel
        if "System1" in by_design:
            assert "kernel.estimate-batch" in by_design["System1"][
                "kernel_seconds"
            ]


class TestValidatorRejects:
    def _base(self, artifact):
        return copy.deepcopy(artifact)

    def test_wrong_kind(self, artifact):
        doc = self._base(artifact)
        doc["kind"] = "bench-something"
        with pytest.raises(validator.ArtifactError):
            validator.check_bench_hotpath(doc)

    def test_empty_runs(self, artifact):
        doc = self._base(artifact)
        doc["runs"] = []
        with pytest.raises(validator.ArtifactError):
            validator.check_bench_hotpath(doc)

    def test_inconsistent_speedup(self, artifact):
        doc = self._base(artifact)
        doc["runs"][0]["speedup"] = doc["runs"][0]["speedup"] * 2
        with pytest.raises(validator.ArtifactError):
            validator.check_bench_hotpath(doc)

    def test_divergent_plans(self, artifact):
        doc = self._base(artifact)
        doc["runs"][0]["identical"] = False
        with pytest.raises(validator.ArtifactError):
            validator.check_bench_hotpath(doc)

    def test_negative_kernel_timing(self, artifact):
        doc = self._base(artifact)
        doc["runs"][0]["kernel_seconds"]["kernel.exact-totals"] = -0.1
        with pytest.raises(validator.ArtifactError):
            validator.check_bench_hotpath(doc)

    def test_missing_field(self, artifact):
        doc = self._base(artifact)
        del doc["runs"][0]["fast_seconds"]
        with pytest.raises(validator.ArtifactError):
            validator.check_bench_hotpath(doc)


class TestNeverSlower:
    """Vectorized paths must at least match their scalar references.

    Every pair below has a 5-10x measured margin; asserting bare parity
    keeps the guard immune to machine noise while still catching any
    change that silently routes the hot path back through scalar code.
    """

    def test_exact_kernel_not_slower_than_dense(self):
        soc = load_design("d695")
        core = max(soc.cores, key=lambda c: c.scan_cells * c.patterns)
        cubes = generate_cubes(core)
        designs = [design_wrapper(core, m) for m in range(1, 33)]
        cubes.slices(designs[0])  # warm any lazy cube state

        # The dense path pays the per-design slice gather every time;
        # avoiding that materialization is the point of the fused kernel,
        # so it belongs inside the timed region.
        began = time.perf_counter()
        dense = np.array(
            [int(slice_costs(cubes.slices(d)).sum()) for d in designs],
            dtype=np.int64,
        )
        dense_seconds = time.perf_counter() - began

        began = time.perf_counter()
        fused = exact_codeword_totals(
            cubes, designs, symbols=symbol_table(cubes)
        )
        fused_seconds = time.perf_counter() - began

        assert np.array_equal(fused, dense)
        assert fused_seconds <= dense_seconds, (
            f"fused exact kernel {fused_seconds:.3f}s slower than "
            f"dense path {dense_seconds:.3f}s"
        )

    def test_batch_scheduler_not_slower_than_loop(self):
        rng = np.random.default_rng(11)
        names = [f"c{i}" for i in range(12)]
        times = {
            (n, w): int(rng.integers(100, 10_000))
            for n in names
            for w in range(1, 29)
        }
        time_of = lambda n, w: times[(n, w)]  # noqa: E731
        parts = list(iter_partitions(28, 6, 1))

        table = TimeTable(names, time_of)
        table_warm = TimeTable(names, time_of)
        for w in range(1, 29):  # exclude lazy fills from both timings
            table.row(w), table_warm.row(w)

        began = time.perf_counter()
        batch = schedule_makespans_batch(table, parts)
        batch_seconds = time.perf_counter() - began

        began = time.perf_counter()
        loop = [schedule_cores(names, p, time_of).makespan for p in parts]
        loop_seconds = time.perf_counter() - began

        assert batch.tolist() == loop
        assert batch_seconds <= loop_seconds, (
            f"batch scheduler {batch_seconds:.3f}s slower than "
            f"scalar loop {loop_seconds:.3f}s over {len(parts)} partitions"
        )

    def test_fast_plan_not_slower_than_scalar(self, monkeypatch):
        """Cold d695 plan, fast stack vs REPRO_SCALAR_KERNELS=1."""
        soc = load_design("d695")
        config = RunConfig(use_cache=False)

        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
        clear_analysis_cache()
        clear_wrapper_design_cache()
        began = time.perf_counter()
        fast = plan(soc, 16, config)
        fast_seconds = time.perf_counter() - began

        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        clear_analysis_cache()
        clear_wrapper_design_cache()
        began = time.perf_counter()
        scalar = plan(soc, 16, config)
        scalar_seconds = time.perf_counter() - began

        monkeypatch.delenv("REPRO_SCALAR_KERNELS", raising=False)
        clear_analysis_cache()
        clear_wrapper_design_cache()

        assert fast.architecture == scalar.architecture
        assert fast_seconds <= scalar_seconds, (
            f"fast plan {fast_seconds:.3f}s slower than scalar "
            f"{scalar_seconds:.3f}s"
        )
