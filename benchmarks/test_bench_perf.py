"""Kernel performance benchmarks (multi-round pytest-benchmark runs).

Not a paper artifact: these measure the library's hot kernels so
regressions in the cost-critical paths (slice-cost kernel, estimator,
wrapper design, scheduling) are visible.  The paper's "CPU time below
one minute" claim rests on these staying fast.
"""

import statistics
import time

import numpy as np
import pytest

from repro import obs
from repro.compression.cubes import generate_cubes
from repro.compression.estimator import estimate_codewords
from repro.compression.selective import encode_slices, slice_costs
from repro.core.partition import search_partitions
from repro.core.scheduler import schedule_cores
from repro.soc.core import Core
from repro.soc.industrial import industrial_core
from repro.wrapper.design import clear_wrapper_design_cache, design_wrapper


@pytest.fixture(scope="module")
def slices_64():
    rng = np.random.default_rng(1)
    arr = np.where(rng.random((4096, 64)) < 0.05, rng.integers(0, 2, (4096, 64)), 2)
    return arr.astype(np.int8)


def test_slice_cost_kernel_throughput(benchmark, slices_64):
    """Vectorized cost of 4096 64-bit slices (the DSE inner loop)."""
    total = benchmark(lambda: int(slice_costs(slices_64).sum()))
    assert total >= 4096  # at least the END codewords


def test_bit_level_encoder(benchmark, slices_64):
    """The exact (per-slice Python) encoder on a 512-slice batch."""
    batch = slices_64[:512]
    stream = benchmark(lambda: encode_slices(batch))
    assert stream.slice_count == 512


def test_estimator_per_configuration(benchmark):
    """One sampled (core, m) evaluation for an industrial core."""
    core = industrial_core("ckt-7")
    design = design_wrapper(core, 200)
    stats = benchmark(
        lambda: estimate_codewords(core, design, samples=768)
    )
    assert stats.total_codewords > 0


def test_wrapper_design_bfd(benchmark):
    """BFD wrapper design for a 300-chain core (no cache)."""
    core = industrial_core("ckt-11")

    def run():
        clear_wrapper_design_cache()
        return design_wrapper(core, 128)

    design = benchmark(run)
    assert design.num_chains == 128


def test_list_scheduler(benchmark):
    """O(nk) list scheduling of 50 cores on 6 TAMs."""
    rng = np.random.default_rng(2)
    times = {f"c{i}": int(rng.integers(100, 10_000)) for i in range(50)}
    names = list(times)

    outcome = benchmark(
        lambda: schedule_cores(names, [12, 10, 8, 6, 4, 2], lambda n, w: times[n])
    )
    assert outcome.makespan > 0


def test_partition_search_exhaustive(benchmark):
    """Full exhaustive partition search at W=32 with cached times."""
    rng = np.random.default_rng(3)
    work = {f"c{i}": int(rng.integers(5_000, 200_000)) for i in range(10)}
    names = list(work)

    def time_of(name, width):
        return -(-work[name] // width)

    result = benchmark(
        lambda: search_partitions(names, 32, time_of, strategy="exhaustive")
    )
    assert result.makespan > 0


class TestObservabilityOverhead:
    """Guard the obs subsystem's two cost claims (docs/observability.md):

    * **disabled**: every probe is a global read and a return, so the
      probe traffic of a whole optimize run must stay under 1 % of its
      wall clock;
    * **enabled**: full collection (spans, metrics, the event bridge,
      report assembly) must stay under 5 % end to end on a cold d695
      optimize run.
    """

    ROUNDS = 3

    @staticmethod
    def _cold_d695_seconds(enabled: bool) -> tuple[float, "object"]:
        from repro.explore.dse import clear_analysis_cache
        from repro.pipeline import RunConfig, plan
        from repro.soc.benchmarks import load_benchmark

        soc = load_benchmark("d695")
        clear_analysis_cache()
        clear_wrapper_design_cache()
        began = time.perf_counter()
        if enabled:
            with obs.enabled() as active:
                plan(soc, 16, RunConfig())
            context = active
        else:
            plan(soc, 16, RunConfig())
            context = None
        return time.perf_counter() - began, context

    @pytest.fixture(scope="class")
    def timings(self):
        """Interleaved cold runs: medians are robust to machine drift."""
        disabled, enabled = [], []
        context = None
        for _ in range(self.ROUNDS):
            seconds, _ = self._cold_d695_seconds(enabled=False)
            disabled.append(seconds)
            seconds, context = self._cold_d695_seconds(enabled=True)
            enabled.append(seconds)
        return (
            statistics.median(disabled),
            statistics.median(enabled),
            context,
        )

    def test_disabled_probe_traffic_below_one_percent(self, timings):
        """Per-call no-op cost x a run's actual probe count < 1 %."""
        median_disabled, _, context = timings
        calls = 200_000
        began = time.perf_counter()
        for _ in range(calls):
            obs.inc("bench.noop")
        inc_cost = (time.perf_counter() - began) / calls
        began = time.perf_counter()
        for _ in range(calls // 4):
            with obs.span("bench.noop"):
                pass
        span_cost = (time.perf_counter() - began) / (calls // 4)
        per_call = max(inc_cost, span_cost)

        # Upper-bound the run's probe count from the enabled run: every
        # span, every histogram observation, and (over-counting multi-
        # increment calls as one call each) every counter unit.
        snapshot = context.registry.snapshot()
        probe_calls = (
            len(context.tracer.spans)
            + sum(h["count"] for h in snapshot["histograms"].values())
            + sum(snapshot["counters"].values())
        )
        assert probe_calls > 0
        overhead = per_call * probe_calls
        assert overhead < 0.01 * median_disabled, (
            f"disabled probes would cost {overhead:.4f}s of "
            f"{median_disabled:.2f}s ({100 * overhead / median_disabled:.2f}%)"
        )

    def test_enabled_collection_below_five_percent(self, timings, record):
        median_disabled, median_enabled, _ = timings
        ratio = median_enabled / median_disabled - 1.0
        record(
            "obs_overhead.txt",
            (
                "observability overhead on cold d695 plan (W=16, serial, "
                f"median of {self.ROUNDS}):\n"
                f"  disabled {median_disabled:.3f}s\n"
                f"  enabled  {median_enabled:.3f}s\n"
                f"  overhead {100 * ratio:+.2f}% (budget 5%)"
            ),
        )
        assert ratio < 0.05, (
            f"enabled observability costs {100 * ratio:.2f}% "
            f"({median_enabled:.3f}s vs {median_disabled:.3f}s)"
        )


def test_cube_generation(benchmark):
    """Synthetic cube materialization for a d695-class core."""
    core = Core(
        name="gen",
        inputs=38,
        outputs=304,
        scan_chain_lengths=(45,) * 32,
        patterns=110,
        care_bit_density=0.6,
        seed=4,
    )
    cubes = benchmark(lambda: generate_cubes(core))
    assert cubes.patterns == 110
