"""Kernel performance benchmarks (multi-round pytest-benchmark runs).

Not a paper artifact: these measure the library's hot kernels so
regressions in the cost-critical paths (slice-cost kernel, estimator,
wrapper design, scheduling) are visible.  The paper's "CPU time below
one minute" claim rests on these staying fast.
"""

import numpy as np
import pytest

from repro.compression.cubes import generate_cubes
from repro.compression.estimator import estimate_codewords
from repro.compression.selective import encode_slices, slice_costs
from repro.core.partition import search_partitions
from repro.core.scheduler import schedule_cores
from repro.soc.core import Core
from repro.soc.industrial import industrial_core
from repro.wrapper.design import clear_wrapper_design_cache, design_wrapper


@pytest.fixture(scope="module")
def slices_64():
    rng = np.random.default_rng(1)
    arr = np.where(rng.random((4096, 64)) < 0.05, rng.integers(0, 2, (4096, 64)), 2)
    return arr.astype(np.int8)


def test_slice_cost_kernel_throughput(benchmark, slices_64):
    """Vectorized cost of 4096 64-bit slices (the DSE inner loop)."""
    total = benchmark(lambda: int(slice_costs(slices_64).sum()))
    assert total >= 4096  # at least the END codewords


def test_bit_level_encoder(benchmark, slices_64):
    """The exact (per-slice Python) encoder on a 512-slice batch."""
    batch = slices_64[:512]
    stream = benchmark(lambda: encode_slices(batch))
    assert stream.slice_count == 512


def test_estimator_per_configuration(benchmark):
    """One sampled (core, m) evaluation for an industrial core."""
    core = industrial_core("ckt-7")
    design = design_wrapper(core, 200)
    stats = benchmark(
        lambda: estimate_codewords(core, design, samples=768)
    )
    assert stats.total_codewords > 0


def test_wrapper_design_bfd(benchmark):
    """BFD wrapper design for a 300-chain core (no cache)."""
    core = industrial_core("ckt-11")

    def run():
        clear_wrapper_design_cache()
        return design_wrapper(core, 128)

    design = benchmark(run)
    assert design.num_chains == 128


def test_list_scheduler(benchmark):
    """O(nk) list scheduling of 50 cores on 6 TAMs."""
    rng = np.random.default_rng(2)
    times = {f"c{i}": int(rng.integers(100, 10_000)) for i in range(50)}
    names = list(times)

    outcome = benchmark(
        lambda: schedule_cores(names, [12, 10, 8, 6, 4, 2], lambda n, w: times[n])
    )
    assert outcome.makespan > 0


def test_partition_search_exhaustive(benchmark):
    """Full exhaustive partition search at W=32 with cached times."""
    rng = np.random.default_rng(3)
    work = {f"c{i}": int(rng.integers(5_000, 200_000)) for i in range(10)}
    names = list(work)

    def time_of(name, width):
        return -(-work[name] // width)

    result = benchmark(
        lambda: search_partitions(names, 32, time_of, strategy="exhaustive")
    )
    assert result.makespan > 0


def test_cube_generation(benchmark):
    """Synthetic cube materialization for a d695-class core."""
    core = Core(
        name="gen",
        inputs=38,
        outputs=304,
        scan_chain_lengths=(45,) * 32,
        patterns=110,
        care_bit_density=0.6,
        seed=4,
    )
    cubes = benchmark(lambda: generate_cubes(core))
    assert cubes.patterns == 110
