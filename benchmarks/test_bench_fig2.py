"""Experiment E1 -- Figure 2 of the paper.

Test time versus the number of wrapper chains for core ckt-7 at a fixed
TAM width of w = 10 (so m ranges over [128, 255]).  Paper claims:

* the curve is non-monotonic in m;
* the minimum is *not* at the maximum m = 255 (the paper finds 253);
* the spread (tau_max - tau_min) / tau_max is large (paper: 31%).
"""

from conftest import run_once

from repro.reporting.experiments import figure2_data, format_figure2


def test_figure2_ckt7_w10(benchmark, record):
    data = run_once(benchmark, figure2_data, "ckt-7", 10)
    record("figure2.txt", format_figure2(data))

    # Shape claims (DESIGN.md, E1 fidelity targets).
    assert data.m_values[0] == 128 and data.m_values[-1] == 255
    assert not data.is_monotonic, "tau_c(m) must be non-monotonic"
    assert data.argmin_m != 255, "minimum must not sit at the max m"
    assert data.argmin_m >= 200, "minimum should sit in the upper m range"
    assert 0.10 <= data.relative_spread <= 0.50, (
        "spread should be tens of percent (paper: 31%), got "
        f"{100 * data.relative_spread:.1f}%"
    )
    # Test-time magnitude: the paper's Figure 2 y-axis spans ~3-4e6 cycles.
    assert 1e6 < data.tau_min < 1e7


def test_figure2_other_cores_also_non_monotonic(benchmark, record):
    """The paper reports 'similar behaviour for all cores'."""

    def sweep():
        return {
            name: figure2_data(name, 9)
            for name in ("ckt-1", "ckt-6", "ckt-9")
        }

    results = run_once(benchmark, sweep)
    lines = []
    for name, data in results.items():
        lines.append(
            f"{name}: w=9, min at m={data.argmin_m}, "
            f"spread {100 * data.relative_spread:.1f}%, "
            f"monotonic={data.is_monotonic}"
        )
        assert not data.is_monotonic, name
    record("figure2_other_cores.txt", "\n".join(lines))
