"""Ablation A2 -- selective encoding versus run-length baselines.

The paper builds on selective encoding (ref [14]); its related work
cites the run-length family (Golomb, FDR).  This ablation compresses
the same synthetic sparse test set with all three and with no coding,
showing (a) every coder beats raw delivery at industrial densities and
(b) the flow's conclusions do not hinge on a codec pathology.
"""

import numpy as np
from conftest import run_once

from repro.compression.cubes import fill_zero, generate_cubes
from repro.compression.fdr import FdrCode
from repro.compression.golomb import best_golomb_parameter
from repro.compression.selective import encoded_bits
from repro.reporting.tables import format_table
from repro.soc.core import Core
from repro.wrapper.design import design_wrapper


def _make_core(density: float) -> Core:
    return Core(
        name=f"abl-codec-{density}",
        inputs=24,
        outputs=24,
        scan_chain_lengths=tuple([64] * 40),
        patterns=200,
        care_bit_density=density,
        seed=77,
    )


def _compress_all(density: float):
    core = _make_core(density)
    cubes = generate_cubes(core)
    raw_bits = cubes.bits.size

    design = design_wrapper(core, 40)
    slices = cubes.slices(design)
    selective_bits = encoded_bits(slices)

    filled = fill_zero(cubes).ravel()
    golomb = best_golomb_parameter(filled)
    golomb_bits = golomb.encoded_length(filled)
    fdr_bits = FdrCode().encoded_length(filled)

    return {
        "density": density,
        "raw": raw_bits,
        "selective": selective_bits,
        "golomb": golomb_bits,
        "golomb_b": golomb.b,
        "fdr": fdr_bits,
    }


def test_codec_ablation(benchmark, record):
    results = run_once(
        benchmark, lambda: [_compress_all(d) for d in (0.01, 0.02, 0.05, 0.10)]
    )
    record(
        "ablation_codecs.txt",
        format_table(
            [
                "care density",
                "raw bits",
                "selective",
                "Golomb (best b)",
                "FDR",
                "selective ratio",
            ],
            [
                (
                    r["density"],
                    r["raw"],
                    r["selective"],
                    f"{r['golomb']} (b={r['golomb_b']})",
                    r["fdr"],
                    round(r["raw"] / r["selective"], 2),
                )
                for r in results
            ],
            title="Ablation A2 -- compressed stimulus bits by codec",
        ),
    )

    for r in results:
        # Industrial densities: every codec compresses.
        assert r["selective"] < r["raw"], r
        assert r["golomb"] < r["raw"], r
        assert r["fdr"] < r["raw"], r

    # Compression degrades as density rises, for every codec.
    for key in ("selective", "golomb", "fdr"):
        sizes = [r[key] for r in results]
        assert all(b > a for a, b in zip(sizes, sizes[1:])), key

    # Selective encoding pays a per-slice floor (one END codeword per
    # scan slice) that pure run-length coders do not, so it is denser on
    # the raw bit count at very low care densities; what it buys is the
    # fixed-rate, slice-aligned delivery the TAM scheduling needs.  The
    # gap must stay bounded, and it must close as density rises.
    gaps = []
    for r in results:
        best_rle = min(r["golomb"], r["fdr"])
        gap = r["selective"] / best_rle
        gaps.append(gap)
        assert gap < 8, r
    assert gaps[-1] < gaps[0], "the gap should close at higher density"
