"""Experiment E6 -- Table 3 of the paper (the headline result).

Test time and test data volume, with and without TDC, at several TAM
width constraints, for d695 and the four industrial-core systems.

Paper claims (industrial designs):

* ~15x average test-time reduction (12.59x over all designs incl. d695);
* ~16x average volume reduction versus the no-TDC plan;
* CPU time below one minute per run.

Our d695 uses synthetic i.i.d. cubes at the published ~66% care-bit
density; at that density selective encoding cannot win (the paper's own
discussion flags these benchmarks as unrealistically dense and pivots
to the industrial cores), so the d695 fidelity band here is
"compression roughly break-even or worse" rather than the paper's
mild gain -- see EXPERIMENTS.md for the full discussion.
"""

from conftest import run_once

from repro.reporting.experiments import format_table3, table3_rows

WIDTHS = (16, 32, 48, 64)
DESIGNS = ("d695", "System1", "System2", "System3", "System4")


def test_table3_tdc_vs_no_tdc(benchmark, record):
    rows = run_once(benchmark, table3_rows, DESIGNS, WIDTHS)
    record("table3.txt", format_table3(rows))

    industrial = [r for r in rows if r.design.startswith("System")]
    assert len(industrial) == 4 * len(WIDTHS)

    # Headline: industrial-core systems gain an order of magnitude.
    avg_time = sum(r.time_reduction for r in industrial) / len(industrial)
    avg_volume = sum(r.volume_reduction for r in industrial) / len(industrial)
    assert 6.0 <= avg_time <= 30.0, f"avg industrial time reduction {avg_time:.1f}x"
    assert 6.0 <= avg_volume <= 30.0, (
        f"avg industrial volume reduction {avg_volume:.1f}x"
    )
    # Every industrial row individually wins by a clear factor.
    assert all(r.time_reduction > 3.0 for r in industrial)

    # Volume versus the *initial* (unpadded) cube volume also shrinks.
    assert all(r.volume_reduction_vs_initial > 3.0 for r in industrial)

    # CPU: the paper reports < 1 minute; so do we, per row and mode.
    assert all(r.cpu_no_tdc < 60 and r.cpu_tdc < 60 for r in rows)

    # d695 (dense cubes): compression is not the win the sparse cores
    # get; it must stay within a sane band rather than explode.
    d695 = [r for r in rows if r.design == "d695"]
    assert all(0.2 <= r.time_reduction <= 5.0 for r in d695)


def test_table3_auto_mode_never_loses(benchmark, record):
    """Extension: with per-core bypass, TDC-auto never hurts any design."""
    rows = run_once(
        benchmark, table3_rows, ("d695", "System2"), (16, 32), compression="auto"
    )
    record("table3_auto.txt", format_table3(rows))
    assert all(r.time_reduction >= 0.999 for r in rows)
