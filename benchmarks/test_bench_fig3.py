"""Experiment E2 -- Figure 3 of the paper.

Lowest test time (over m) for each exact TAM width w, core ckt-7.
Paper claims the curve is non-monotonic in w: the test time at TAM
width 11 is lower than at widths 12 and 13.
"""

from conftest import run_once

from repro.reporting.experiments import figure3_data, format_figure3


def test_figure3_ckt7(benchmark, record):
    data = run_once(benchmark, figure3_data, "ckt-7", range(6, 15))
    record("figure3.txt", format_figure3(data))

    times = dict(zip(data.code_widths, data.test_times))

    # Strong decrease while the TAM is the bottleneck.
    assert times[6] > times[8] > times[10]

    # The paper's headline: tau(11) < tau(12) and tau(11) < tau(13).
    assert times[11] < times[12], "w=12 must not beat w=11"
    assert times[11] < times[13], "w=13 must not beat w=11"
    assert data.upticks(), "the curve must be non-monotonic"

    # Magnitude: the flat region sits in the few-million-cycle range.
    assert 1e6 < times[11] < 1e7
