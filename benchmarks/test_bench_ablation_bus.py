"""Ablation A9 -- shared bus versus dedicated TAMs.

The authors' companion work moves test data over one time-multiplexed
bus instead of spatially partitioned TAMs.  Fluid bandwidth sharing
subsumes any fixed partition, so the bus plan should match or beat the
TAM plan at every width; the interesting output is *by how much*, and
how close both sit to the bandwidth lower bound.
"""

from conftest import run_once

from repro.core.bus import optimize_bus
from repro.core.optimizer import optimize_soc
from repro.reporting.tables import format_table
from repro.soc.industrial import industrial_system

WIDTHS = (16, 24, 32)


def _study():
    soc = industrial_system("System2")
    rows = []
    for width in WIDTHS:
        tam = optimize_soc(soc, width, compression=True)
        bus = optimize_bus(soc, width, compression=True)
        rows.append(
            {
                "width": width,
                "tam_time": tam.test_time,
                "bus_time": bus.test_time,
                "bound": bus.lower_bound,
                "tightness": bus.tightness,
                "rates": dict(sorted(bus.rates.items())),
            }
        )
    return rows


def test_bus_vs_tam(benchmark, record):
    rows = run_once(benchmark, _study)
    record(
        "ablation_bus.txt",
        format_table(
            [
                "width",
                "tau dedicated TAMs",
                "tau shared bus",
                "bus/TAM",
                "bandwidth bound",
                "bus tightness",
            ],
            [
                (
                    r["width"],
                    r["tam_time"],
                    r["bus_time"],
                    round(r["bus_time"] / r["tam_time"], 3),
                    r["bound"],
                    round(r["tightness"], 3),
                )
                for r in rows
            ],
            title="Ablation A9 -- System2 with TDC: bus vs dedicated TAMs",
        ),
    )

    for r in rows:
        # The bus never loses badly, and often wins.
        assert r["bus_time"] <= r["tam_time"] * 1.10, r
        # Both respect the bandwidth lower bound; the bus sits close.
        assert r["bus_time"] >= r["bound"]
        assert r["tightness"] <= 1.6

    times = [r["bus_time"] for r in rows]
    assert all(b <= a for a, b in zip(times, times[1:]))
