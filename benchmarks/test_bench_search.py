"""Search-backend benchmark guard: artifact schema + live smoke.

Two layers of protection for the ``BENCH_search.json`` artifact:

* the committed document must validate against the ``bench-search``
  schema (via the shared validator in
  ``scripts/check_obs_artifacts.py``) and record all three required
  backends (greedy / anneal / evolutionary) on the many-core
  synthetic workload, under a fixed seed;
* the validator must reject malformed or inconsistent documents, so a
  broken bench run cannot record a green artifact; and the bench
  runner itself is re-run live on a small synthetic SOC to prove it
  still produces a document the validator accepts.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO / "benchmarks" / "results" / "BENCH_search.json"


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validator = _load_script("check_obs_artifacts")


@pytest.fixture(scope="module")
def artifact() -> dict:
    return json.loads(ARTIFACT.read_text())


class TestCommittedArtifact:
    def test_validates(self, artifact):
        summary = validator.check_bench_search(artifact)
        assert summary["runs"] >= 3

    def test_records_the_many_core_workload(self, artifact):
        assert artifact["design"].startswith("synth")
        assert artifact["cores"] >= 100
        assert artifact["width_budget"] >= 64
        assert artifact["seed"] == 0

    def test_all_backends_present(self, artifact):
        backends = {run["backend"] for run in artifact["runs"]}
        assert {"greedy", "anneal", "evolutionary"} <= backends

    def test_metaheuristics_report_throughput(self, artifact):
        by_backend = {run["backend"]: run for run in artifact["runs"]}
        for backend in ("anneal", "evolutionary"):
            run = by_backend[backend]
            assert run["evals_per_sec"] > run["evaluations"] / (
                run["seconds"] * 1.02
            )
            assert run["evaluations"] > 100


class TestValidatorRejections:
    def test_wrong_kind(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["kind"] = "bench-hotpath"
        with pytest.raises(validator.ArtifactError, match="kind"):
            validator.check_bench_search(doc)

    def test_missing_backend(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["runs"] = [
            r for r in doc["runs"] if r["backend"] != "evolutionary"
        ]
        with pytest.raises(validator.ArtifactError, match="evolutionary"):
            validator.check_bench_search(doc)

    def test_inconsistent_rate(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["runs"][0]["evals_per_sec"] = (
            doc["runs"][0]["evals_per_sec"] * 10 + 1
        )
        with pytest.raises(validator.ArtifactError, match="evals_per_sec"):
            validator.check_bench_search(doc)

    def test_infeasible_widths(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["runs"][0]["tam_widths"] = [doc["width_budget"] + 1]
        with pytest.raises(validator.ArtifactError, match="exceed"):
            validator.check_bench_search(doc)

    def test_dispatch_knows_both_kinds(self):
        assert set(validator.BENCH_CHECKERS) >= {
            "bench-hotpath",
            "bench-search",
        }


class TestLiveSmoke:
    def test_runner_produces_valid_document(self, monkeypatch):
        """The bench runner end-to-end on a small synthetic SOC."""
        bench = _load_script("bench_search")
        monkeypatch.setattr(
            bench,
            "BACKEND_OPTIONS",
            {
                "greedy": {},
                "anneal": {"iterations": 300},
                "evolutionary": {"generations": 3, "population": 6},
            },
        )
        doc = bench.measure("synth20", 24, 0)
        summary = validator.check_bench_search(doc)
        assert summary["runs"] == 3
        assert doc["cores"] == 20
