"""Ablation A4 -- care-bit density decides whether TDC pays.

The paper's Table 3 gains come from industrial cores at 1-5% care-bit
density, while the ISCAS-based d695 (44-66% density) barely benefits.
This ablation sweeps the density of an otherwise fixed SOC and locates
the crossover, explaining the d695-vs-System gap quantitatively.
"""

from conftest import run_once

from repro.core.optimizer import optimize_soc
from repro.reporting.tables import format_table
from repro.soc.core import Core
from repro.soc.soc import Soc

DENSITIES = (0.01, 0.02, 0.05, 0.10, 0.20, 0.40, 0.60)


def _soc_at_density(density: float) -> Soc:
    cores = tuple(
        Core(
            name=f"c{i}",
            inputs=12,
            outputs=12,
            scan_chain_lengths=tuple([25] * 48),
            patterns=60,
            care_bit_density=density,
            seed=500 + i,
        )
        for i in range(4)
    )
    return Soc(name=f"dens-{density}", cores=cores)


def _sweep():
    rows = []
    for density in DENSITIES:
        soc = _soc_at_density(density)
        plain = optimize_soc(soc, 16, compression=False)
        packed = optimize_soc(soc, 16, compression=True)
        auto = optimize_soc(soc, 16, compression="auto")
        rows.append(
            {
                "density": density,
                "tau_nc": plain.test_time,
                "tau_c": packed.test_time,
                "tau_auto": auto.test_time,
                "gain": plain.test_time / packed.test_time,
            }
        )
    return rows


def test_density_crossover(benchmark, record):
    rows = run_once(benchmark, _sweep)
    record(
        "ablation_density.txt",
        format_table(
            ["care density", "tau no-TDC", "tau TDC", "tau auto", "gain"],
            [
                (r["density"], r["tau_nc"], r["tau_c"], r["tau_auto"], round(r["gain"], 2))
                for r in rows
            ],
            title="Ablation A4 -- TDC gain versus care-bit density (W=16)",
        ),
    )

    gains = [r["gain"] for r in rows]
    # The gain falls monotonically with density.
    assert all(b <= a * 1.02 for a, b in zip(gains, gains[1:]))
    # Industrial regime: clear win.  Dense ISCAS regime: no win.
    assert gains[0] > 3.0
    assert gains[-1] < 1.2
    # Somewhere in between the crossover happens.
    assert any(g < 1.0 for g in gains) or gains[-1] < 1.0

    # The auto (bypass) extension never loses to the no-TDC plan.
    assert all(r["tau_auto"] <= r["tau_nc"] for r in rows)
