"""Experiment E4 -- Table 1 of the paper.

Test-time minimization under an ATE-channel constraint (W_ATE) for the
academic benchmarks d695 and d2758.  The paper compares against the
SOC-level decompressor of [18], noting that at an ATE-channel
constraint the SOC-level architecture is competitive (it spends few
channels and many on-chip wires) -- the regime where the proposed
method "performs not as well" as at a TAM-wire constraint.

The comparator numbers in the paper's Table 1 are unreadable in our
source dump; the bench therefore reproduces the *structural* claim with
our [18] stand-in and records the full proposed-approach column.
"""

from conftest import run_once

from repro.reporting.experiments import format_table1, table1_rows


def test_table1_ate_channel_constraint(benchmark, record):
    rows = run_once(
        benchmark, table1_rows, ("d695", "d2758"), (16, 24, 32)
    )
    record("table1.txt", format_table1(rows))

    by_design: dict[str, list] = {}
    for row in rows:
        by_design.setdefault(row.design, []).append(row)

    for design, items in by_design.items():
        items.sort(key=lambda r: r.ate_channels)
        times = [r.proposed_time for r in items]
        # More channels never hurt the proposed approach.
        assert all(b <= a for a, b in zip(times, times[1:])), design
        # The SOC-level comparator exists and produces plausible times.
        assert all(r.soc_level_time and r.soc_level_time > 0 for r in items)

    # Structural claim: the SOC-level architecture is *relatively*
    # stronger under a channel constraint than under a wire constraint
    # of the same size (the paper: "when comparing test time at ATE
    # channel constraint we perform not as well as ... at TAM wire
    # constraint").  Check on d695 at matched budgets.
    from repro.reporting.experiments import table2_rows

    wire_rows = table2_rows(("d695",), (16, 24, 32), include_soc_level=True)
    wire_ratio = {r.tam_width: r.ratio for r in wire_rows}
    for row in by_design["d695"]:
        assert row.ratio is not None
        assert row.ratio >= wire_ratio[row.ate_channels] * 0.98, (
            f"budget {row.ate_channels}: channel-constraint ratio "
            f"{row.ratio:.3f} should not beat wire-constraint ratio "
            f"{wire_ratio[row.ate_channels]:.3f}"
        )
