"""Packing benchmark guard: artifact schema + live smoke.

Two layers of protection for the ``BENCH_packing.json`` artifact:

* the committed document must validate against the ``bench-packing``
  schema (via the shared validator in
  ``scripts/check_obs_artifacts.py``): all six benchmark SOCs plus a
  synthetic design, every packed plan verified, and the headline gate
  that at least one design is never worse packed than fixed;
* the validator must reject malformed or inconsistent documents, so a
  broken bench run cannot record a green artifact; and the bench
  runner itself is re-run live on a small design pair to prove it
  still produces a document the validator accepts.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO / "benchmarks" / "results" / "BENCH_packing.json"


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validator = _load_script("check_obs_artifacts")


@pytest.fixture(scope="module")
def artifact() -> dict:
    return json.loads(ARTIFACT.read_text())


class TestCommittedArtifact:
    def test_validates(self, artifact):
        summary = validator.check_bench_packing(artifact)
        assert summary["runs"] >= 12
        assert summary["never_worse"]

    def test_covers_all_benchmark_designs(self, artifact):
        covered = {run["design"] for run in artifact["runs"]}
        assert set(validator.PACKING_DESIGNS) <= covered
        assert any(d.startswith("synth") for d in covered)

    def test_every_packed_plan_was_verified(self, artifact):
        for run in artifact["runs"]:
            assert run["packed"]["verified"] is True

    def test_packed_wins_somewhere(self, artifact):
        # The gate in numbers: some design/width pair strictly better.
        assert any(run["ratio"] < 1.0 for run in artifact["runs"])
        assert artifact["never_worse_designs"]

    def test_records_both_pipelines_honestly(self, artifact):
        for run in artifact["runs"]:
            assert run["fixed"]["partitions_evaluated"] >= 1
            assert run["packed"]["placements_evaluated"] >= run["cores"]
            assert run["fixed"]["seconds"] >= 0
            assert run["packed"]["seconds"] >= 0


class TestValidatorRejections:
    def test_wrong_kind(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["kind"] = "bench-search"
        with pytest.raises(validator.ArtifactError, match="kind"):
            validator.check_bench_packing(doc)

    def test_missing_design(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["runs"] = [r for r in doc["runs"] if r["design"] != "System3"]
        with pytest.raises(validator.ArtifactError, match="System3"):
            validator.check_bench_packing(doc)

    def test_missing_synthetic(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["runs"] = [
            r for r in doc["runs"] if not r["design"].startswith("synth")
        ]
        with pytest.raises(validator.ArtifactError, match="synth"):
            validator.check_bench_packing(doc)

    def test_unverified_packed_plan(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["runs"][0]["packed"]["verified"] = False
        with pytest.raises(validator.ArtifactError, match="not verified"):
            validator.check_bench_packing(doc)

    def test_inconsistent_ratio(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["runs"][0]["ratio"] = doc["runs"][0]["ratio"] * 2 + 1
        with pytest.raises(validator.ArtifactError, match="inconsistent"):
            validator.check_bench_packing(doc)

    def test_stale_never_worse_list(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["never_worse_designs"] = list(doc["never_worse_designs"]) + [
            "d695"
        ]
        with pytest.raises(
            validator.ArtifactError, match="never_worse_designs"
        ):
            validator.check_bench_packing(doc)

    def test_gate_fails_when_packed_always_worse(self, artifact):
        doc = copy.deepcopy(artifact)
        for run in doc["runs"]:
            run["packed"]["makespan"] = run["fixed"]["makespan"] * 2
            run["ratio"] = 2.0
        doc["never_worse_designs"] = []
        with pytest.raises(validator.ArtifactError, match="gate"):
            validator.check_bench_packing(doc)

    def test_dispatch_knows_the_kind(self):
        assert "bench-packing" in validator.BENCH_CHECKERS


class TestLiveSmoke:
    def test_runner_produces_valid_document(self, monkeypatch):
        """The bench runner end-to-end on a small design pair.

        ``System1`` is one of the designs where packing genuinely wins
        at W=16 (the committed artifact records ratio 0.978), so the
        never-worse gate holds on this reduced sweep too.
        """
        bench = _load_script("bench_packing")
        monkeypatch.setattr(
            validator, "PACKING_DESIGNS", ("System1",), raising=True
        )
        doc = bench.measure(("System1", "synth6"), (16,))
        summary = validator.check_bench_packing(doc)
        assert summary["runs"] == 2
        assert "System1" in summary["never_worse"]
