"""Experiment E3 -- Figure 4 of the paper.

One industrial design planned three ways at the same width budget
(the paper uses W = 31, split by its optimizer into 12 + 10 + 9):

  (a) no TDC;
  (b) one decompressor per TAM (same test time as (c) but the on-chip
      TAMs behind the decompressors are extremely wide);
  (c) one decompressor per core (the proposal: narrow on-chip TAMs).

Claims: tau(b) ~= tau(c) << tau(a); wires(c) << wires(b).
"""

from conftest import run_once

from repro.reporting.experiments import figure4_data, format_figure4


def test_figure4_three_architectures(benchmark, record):
    data = run_once(benchmark, figure4_data, "System1", 31)
    record("figure4.txt", format_figure4(data))

    tau_a = data.no_tdc.test_time
    tau_b = data.per_tam.test_time
    tau_c = data.per_core.test_time

    # TDC buys a large factor over the no-TDC plan.
    assert tau_c * 3 < tau_a, f"TDC should win big: {tau_a} vs {tau_c}"
    assert tau_b * 3 < tau_a

    # Per-core matches per-TAM test time (within 15%: the per-TAM search
    # space is slightly different because each part must host a code).
    assert abs(tau_b - tau_c) / max(tau_b, tau_c) < 0.15

    # ... but with far narrower on-chip TAMs.
    assert data.per_core_wires <= data.width_budget
    assert data.per_tam_wires > 3 * data.per_core_wires

    # The budget is split into a handful of TAMs, as in the paper.
    assert 2 <= len(data.per_core.tam_widths) <= 6
