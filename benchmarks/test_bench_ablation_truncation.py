"""Ablation A8 -- test quality versus ATE memory depth.

The paper's introduction motivates compression with "the need for large
memory on testers".  This ablation makes that concrete: at a given
per-channel vector depth, a plan that does not fit must truncate
patterns and lose fault coverage.  Compression shrinks the schedule ~9x,
so at equal tester memory the compressed plan ships (near-)full quality
while the uncompressed one sheds coverage.
"""

from conftest import run_once

from repro.core.optimizer import optimize_soc
from repro.quality.truncation import truncate_for_depth
from repro.reporting.tables import format_table
from repro.soc.industrial import industrial_system


def _study():
    soc = industrial_system("System2")
    plain = optimize_soc(soc, 32, compression=False)
    packed = optimize_soc(soc, 32, compression=True)
    rows = []
    for depth_fraction in (1.0, 0.5, 0.25, 0.12):
        depth = int(plain.test_time * depth_fraction)
        plain_result = truncate_for_depth(soc, plain, depth)
        packed_result = truncate_for_depth(soc, packed, depth)
        rows.append(
            {
                "fraction": depth_fraction,
                "depth": depth,
                "plain_quality": plain_result.quality,
                "plain_fits": plain_result.fits,
                "packed_quality": packed_result.quality,
                "packed_fits": packed_result.fits,
                "full": plain_result.full_quality,
            }
        )
    return rows, plain.test_time, packed.test_time


def test_quality_vs_depth(benchmark, record):
    rows, plain_time, packed_time = run_once(benchmark, _study)
    record(
        "ablation_truncation.txt",
        format_table(
            [
                "depth (x tau_nc)",
                "vectors",
                "quality no-TDC",
                "fits",
                "quality TDC",
                "fits ",
            ],
            [
                (
                    r["fraction"],
                    r["depth"],
                    round(r["plain_quality"], 4),
                    str(r["plain_fits"]),
                    round(r["packed_quality"], 4),
                    str(r["packed_fits"]),
                )
                for r in rows
            ],
            title=(
                "Ablation A8 -- System2 at W=32: test quality after "
                f"truncating to an ATE depth (tau_nc={plain_time}, "
                f"tau_c={packed_time}; full quality {rows[0]['full']:.4f})"
            ),
        ),
    )

    # The compressed plan fits every depth down to ~tau_c and never
    # loses quality; the uncompressed plan degrades monotonically.
    for r in rows:
        if r["depth"] >= packed_time:
            assert r["packed_fits"]
            assert r["packed_quality"] == rows[0]["packed_quality"]
    plain_qualities = [r["plain_quality"] for r in rows]
    assert all(b <= a + 1e-12 for a, b in zip(plain_qualities, plain_qualities[1:]))
    # At a quarter of the raw schedule, the gap is visible.
    quarter = next(r for r in rows if r["fraction"] == 0.25)
    assert quarter["packed_quality"] > quarter["plain_quality"]
