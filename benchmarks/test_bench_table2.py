"""Experiment E5 -- Table 2 of the paper.

Test-time minimization under a TAM-wire constraint (W_TAM) for d695.
Paper claim: at equal on-chip TAM wires, the proposed per-core
decompression beats the SOC-level decompressor of [18] ("a decompressor
at SOC-level leads to extensive and costly TAMs"), because the
comparator must squeeze its expanded virtual TAM into the same wires.
"""

from conftest import run_once

from repro.reporting.experiments import format_table2, table2_rows


def test_table2_tam_width_constraint(benchmark, record):
    rows = run_once(benchmark, table2_rows, ("d695",), (16, 24, 32, 48, 64))
    record("table2.txt", format_table2(rows))

    rows = sorted(rows, key=lambda r: r.tam_width)
    times = [r.proposed_time for r in rows]
    # Wider TAM budgets never hurt.
    assert all(b <= a for a, b in zip(times, times[1:]))

    # The paper's claim: proposed <= soc-level at every wire budget.
    for row in rows:
        assert row.soc_level_time is not None
        assert row.proposed_time <= row.soc_level_time, (
            f"W_TAM={row.tam_width}: proposed {row.proposed_time} should "
            f"beat soc-level {row.soc_level_time}"
        )
        # The comparator spends far fewer ATE channels doing it.
        assert row.soc_level_channels < row.tam_width
