"""Shared plumbing for the benchmark harness.

Every module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Besides the pytest-benchmark timing,
each bench asserts the paper's *shape* claims and writes the rendered
table to ``benchmarks/results/`` so a full run leaves the reproduced
artifacts on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """Write a rendered experiment artifact to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / name
        path.write_text(text + "\n", encoding="utf-8")
        # Also echo to the terminal so tee'd bench logs carry the tables.
        print(f"\n===== {name} =====\n{text}")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy flow with a single measured execution."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
