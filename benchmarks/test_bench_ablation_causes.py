"""Ablation A1 -- decompose the non-monotonicity into the paper's causes.

Section 2 of the paper names three reasons why tau_c(w, m) is not
monotonic:

 (i)  idle bits added to balance wrapper chains (the pad volume changes
      with m);
 (ii) the reorganization of test data across wrapper chains changes the
      per-slice care statistics, and hence the compression achieved;
 (iii) the code width w = ceil(log2(m+1)) + 2 is a ceiling function
      of m, so it jumps at powers of two.

This bench quantifies each cause on ckt-7.
"""

from conftest import run_once

from repro.compression.selective import code_parameters
from repro.explore.dse import analysis_for
from repro.reporting.tables import format_table
from repro.soc.industrial import industrial_core
from repro.wrapper.design import design_wrapper


def _collect(core_name="ckt-7", m_values=(128, 160, 192, 224, 240, 253, 255)):
    core = industrial_core(core_name)
    analysis = analysis_for(core, grid=256)
    rows = []
    for m in m_values:
        design = design_wrapper(core, m)
        point = analysis.compressed_point(m)
        si = design.scan_in_max
        pad = si * m - core.scan_in_bits  # idle bits per pattern (cause i)
        rows.append(
            {
                "m": m,
                "w": code_parameters(m)[1],
                "si": si,
                "pad_bits": pad,
                "codewords": point.codewords,
                "tau": point.test_time,
            }
        )
    return rows


def test_causes_of_non_monotonicity(benchmark, record):
    rows = run_once(benchmark, _collect)
    record(
        "ablation_causes.txt",
        format_table(
            ["m", "w", "si", "pad bits/pattern", "codewords", "tau"],
            [
                (r["m"], r["w"], r["si"], r["pad_bits"], r["codewords"], r["tau"])
                for r in rows
            ],
            title="Ablation A1 -- ckt-7 at w=10: idle bits and coding cost vs m",
        ),
    )

    by_m = {r["m"]: r for r in rows}

    # Cause (i): the idle-bit volume genuinely varies with m.
    pads = [r["pad_bits"] for r in rows]
    assert max(pads) > min(pads)

    # Cause (ii): with identical si, the codeword count still differs
    # between m values (data reorganization changes slice statistics).
    same_si = {}
    for r in rows:
        same_si.setdefault(r["si"], []).append(r["codewords"])
    assert any(
        len(group) > 1 and len(set(group)) > 1 for group in same_si.values()
    ), "codeword counts should differ at equal si"

    # Cause (iii): the code width is constant across the m range of one
    # w (the ceiling plateau) and jumps only at the boundary.
    assert len({r["w"] for r in rows}) == 1
    assert code_parameters(255)[1] == 10 and code_parameters(256)[1] == 11

    # Net effect: tau is non-monotonic over these m.
    taus = [by_m[m]["tau"] for m in sorted(by_m)]
    assert any(b > a for a, b in zip(taus, taus[1:])) or taus[-1] > min(taus)
