"""Ablation A10 -- the analysis engine's execution modes.

The per-core (w, m) sweep dominates the optimizer's runtime on the
industrial systems.  This bench runs the full flow on the largest
bundled SOC (System4, twelve estimate-mode cores) in four modes --
serial, process-parallel, cold persistent cache, warm persistent
cache -- asserts the plans are bit-identical (the engine's core
invariant), and records the wall-clock ablation.

Acceptance: the warm-cache run must beat the cold serial run by at
least 5x.  The parallel row is reported but not gated -- the speedup
it buys is whatever ``os.cpu_count()`` provides, which on a 1-CPU
runner is nothing.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.core.optimizer import optimize_soc
from repro.explore.cache import AnalysisDiskCache
from repro.explore.dse import clear_analysis_cache
from repro.reporting.tables import format_table
from repro.soc.industrial import load_design

DESIGN = "System4"
WIDTH = 64


def _plan(soc, **perf):
    # Greedy partitioning keeps the (uncached) SOC-level search out of
    # the measurement, so the rows isolate the per-core analysis cost.
    clear_analysis_cache()
    return optimize_soc(soc, WIDTH, strategy="greedy", **perf)


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def _signature(result):
    return (
        result.test_time,
        result.tam_widths,
        result.test_data_volume,
        tuple(
            (slot.config, slot.tam_index, slot.start, slot.end)
            for slot in result.architecture.scheduled
        ),
    )


def _ablation(cache_dir):
    soc = load_design(DESIGN)
    rows = []

    serial, t_serial = _timed(_plan, soc, jobs=1, use_cache=False)
    rows.append(("serial (jobs=1)", t_serial, 1.0))

    parallel, t_parallel = _timed(_plan, soc, jobs=0, use_cache=False)
    rows.append((f"parallel (jobs={os.cpu_count()})", t_parallel, t_serial / t_parallel))

    cold, t_cold = _timed(_plan, soc, jobs=0, cache_dir=cache_dir)
    rows.append(("cold cache (parallel + store)", t_cold, t_serial / t_cold))

    warm, t_warm = _timed(_plan, soc, cache_dir=cache_dir)
    rows.append(("warm cache", t_warm, t_serial / t_warm))

    base = _signature(serial)
    assert _signature(parallel) == base
    assert _signature(cold) == base
    assert _signature(warm) == base

    entries = AnalysisDiskCache(cache_dir).stats().entries
    assert entries == len(soc.cores)
    return rows, t_serial / t_warm, serial


def test_parallel_cache_ablation(benchmark, record, tmp_path):
    rows, warm_speedup, plan = run_once(benchmark, _ablation, str(tmp_path / "cache"))
    record(
        "ablation_parallel.txt",
        format_table(
            ["mode", "seconds", "speedup vs serial"],
            [(mode, f"{sec:.3f}", f"{speedup:.1f}x") for mode, sec, speedup in rows],
            title=(
                f"Ablation A10 -- {DESIGN} at W={WIDTH} (greedy): "
                f"analysis engine execution modes "
                f"(test time {plan.test_time} cycles)"
            ),
        ),
    )
    assert warm_speedup >= 5.0, (
        f"warm cache only {warm_speedup:.1f}x faster than cold serial"
    )
