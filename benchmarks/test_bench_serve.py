"""Serve load-test guard: artifact schema, overhead gate, live smoke.

Three layers of protection for the ``BENCH_serve.json`` artifact:

* the committed document must validate against the ``bench-serve``
  schema (via the shared validator in
  ``scripts/check_obs_artifacts.py``) and record a telemetry-on and a
  telemetry-off pass from a >= 64-concurrent-client duplicate-heavy
  run, with the on/off throughput ratio above the overhead floor --
  the standing proof that live telemetry costs nothing measurable;
* the validator must reject malformed or inconsistent documents, so a
  broken load-test run cannot record a green artifact; and
* the load-test harness itself is re-run live in its ``--smoke``
  configuration against a real server subprocess to prove it still
  produces a document the validator accepts.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO / "benchmarks" / "results" / "BENCH_serve.json"


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validator = _load_script("check_obs_artifacts")


@pytest.fixture(scope="module")
def artifact() -> dict:
    return json.loads(ARTIFACT.read_text())


class TestCommittedArtifact:
    def test_validates(self, artifact):
        summary = validator.check_bench_serve(artifact)
        assert summary["runs"] == 2

    def test_records_a_heavy_concurrent_run(self, artifact):
        assert artifact["clients"] >= 64
        assert artifact["clients"] * artifact["requests_per_client"] >= 256
        # The pool is much smaller than the request count, so the run
        # genuinely exercised the dedup window.
        assert len(artifact["workload"]) * 8 <= artifact["clients"] * (
            artifact["requests_per_client"]
        )

    def test_both_telemetry_modes_present(self, artifact):
        modes = {p["telemetry"] for p in artifact["passes"]}
        assert modes == {True, False}

    def test_duplicate_heavy_dedup_rate(self, artifact):
        for record in artifact["passes"]:
            assert record["deduped"] / record["requests"] >= 0.25

    def test_overhead_gate(self, artifact):
        assert artifact["throughput_ratio"] >= (
            validator.SERVE_OVERHEAD_FLOOR
        )

    def test_exposition_matched_authoritative_counters(self, artifact):
        on = next(p for p in artifact["passes"] if p["telemetry"])
        assert on["metrics_consistent"] is True

    def test_no_failed_requests(self, artifact):
        for record in artifact["passes"]:
            assert record["failed"] == 0
            assert record["completed"] + record["rejected"] == (
                record["requests"]
            )


class TestValidatorRejections:
    def test_wrong_kind(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["kind"] = "bench-search"
        with pytest.raises(validator.ArtifactError, match="kind"):
            validator.check_bench_serve(doc)

    def test_missing_pass(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["passes"] = doc["passes"][:1]
        with pytest.raises(validator.ArtifactError, match="two passes"):
            validator.check_bench_serve(doc)

    def test_duplicate_mode(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["passes"][1] = copy.deepcopy(doc["passes"][0])
        with pytest.raises(validator.ArtifactError, match="duplicate"):
            validator.check_bench_serve(doc)

    def test_broken_request_accounting(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["passes"][0]["completed"] += 1
        with pytest.raises(validator.ArtifactError, match="accounting"):
            validator.check_bench_serve(doc)

    def test_counters_must_conserve_submissions(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["passes"][0]["server"]["counters"]["jobs_submitted"] += 3
        with pytest.raises(validator.ArtifactError, match="conserve"):
            validator.check_bench_serve(doc)

    def test_non_monotone_quantiles(self, artifact):
        doc = copy.deepcopy(artifact)
        latency = doc["passes"][0]["latency_s"]
        latency["p50"] = latency["max"] + 1.0
        with pytest.raises(validator.ArtifactError, match="monotone"):
            validator.check_bench_serve(doc)

    def test_inconsistent_throughput(self, artifact):
        doc = copy.deepcopy(artifact)
        doc["passes"][0]["requests_per_s"] *= 3
        with pytest.raises(validator.ArtifactError, match="requests_per_s"):
            validator.check_bench_serve(doc)

    def test_overhead_gate_rejects_slow_telemetry(self, artifact):
        doc = copy.deepcopy(artifact)
        on = next(p for p in doc["passes"] if p["telemetry"])
        on["requests_per_s"] = doc["passes"][0]["requests_per_s"] * 0.1
        on["wall_seconds"] = on["requests"] / on["requests_per_s"]
        doc["throughput_ratio"] = 0.1 / 1.0
        with pytest.raises(validator.ArtifactError, match="overhead"):
            validator.check_bench_serve(doc)

    def test_diverged_exposition(self, artifact):
        doc = copy.deepcopy(artifact)
        next(p for p in doc["passes"] if p["telemetry"])[
            "metrics_consistent"
        ] = False
        with pytest.raises(validator.ArtifactError, match="diverged"):
            validator.check_bench_serve(doc)

    def test_dedup_free_run_is_rejected(self, artifact):
        doc = copy.deepcopy(artifact)
        for record in doc["passes"]:
            moved = record["deduped"]
            record["deduped"] = 0
            counters = record["server"]["counters"]
            counters["jobs_submitted"] = (
                counters.get("jobs_submitted", 0)
                + counters.get("jobs_deduped", 0)
            )
            counters["jobs_deduped"] = 0
            del moved
        with pytest.raises(validator.ArtifactError, match="duplicate-heavy"):
            validator.check_bench_serve(doc)

    def test_dispatch_knows_all_kinds(self):
        assert set(validator.BENCH_CHECKERS) >= {
            "bench-hotpath",
            "bench-search",
            "bench-serve",
        }


class TestLiveSmoke:
    def test_harness_produces_valid_document(self):
        """The load-test harness end-to-end in its CI configuration."""
        loadtest = _load_script("loadtest_serve")
        doc = loadtest.measure(
            8, 2, 2, workload=(("d695", 8), ("d695", 12), ("d695", 16))
        )
        summary = validator.check_bench_serve(doc)
        assert summary["runs"] == 2
        assert doc["clients"] == 8
