"""Ablation A5 -- heuristic quality versus the exact optimum.

The paper justifies its heuristic by NP-hardness.  This ablation runs
the exact branch-and-bound reference on downscaled instances (subsets
of d695 and random sparse SOCs) and measures the list heuristic's
optimality gap.
"""

import numpy as np
from conftest import run_once

from repro.core.optimal import optimal_schedule
from repro.core.partition import iter_partitions
from repro.core.scheduler import schedule_cores
from repro.explore.dse import analysis_for
from repro.reporting.tables import format_table
from repro.soc.benchmarks import load_benchmark


def _d695_instance(width: int):
    soc = load_benchmark("d695").subset(
        ["s5378", "s9234", "s13207", "s15850", "s38417", "s38584"]
    )
    analyses = {c.name: analysis_for(c) for c in soc.cores}

    def time_of(name, w):
        return analyses[name].uncompressed_point(w).test_time

    names = list(soc.core_names)
    exact = optimal_schedule(names, width, time_of, max_parts=3)
    heuristic = min(
        schedule_cores(names, widths, time_of).makespan
        for widths in iter_partitions(width, 3)
    )
    return heuristic, exact.makespan, exact.nodes_explored


def _random_instances(count=6, width=8):
    rng = np.random.default_rng(42)
    gaps = []
    for _ in range(count):
        names = [f"c{i}" for i in range(5)]
        work = {n: int(rng.integers(50, 1000)) for n in names}

        def time_of(name, w, _work=work):
            return -(-_work[name] // w)

        exact = optimal_schedule(names, width, time_of, max_parts=3)
        heuristic = min(
            schedule_cores(names, widths, time_of).makespan
            for widths in iter_partitions(width, 3)
        )
        gaps.append(heuristic / exact.makespan)
    return gaps


def test_heuristic_optimality_gap(benchmark, record):
    def study():
        rows = []
        for width in (8, 12, 16):
            heuristic, exact, nodes = _d695_instance(width)
            rows.append(("d695-6core", width, heuristic, exact, heuristic / exact, nodes))
        return rows, _random_instances()

    rows, gaps = run_once(benchmark, study)
    # Also pit the simulated-annealing searcher against the optimum on
    # the same d695 instance (independent check on the list heuristic).
    from repro.core.anneal import anneal_search

    soc = load_benchmark("d695").subset(
        ["s5378", "s9234", "s13207", "s15850", "s38417", "s38584"]
    )
    analyses = {c.name: analysis_for(c) for c in soc.cores}
    sa = anneal_search(
        list(soc.core_names),
        16,
        lambda n, w: analyses[n].uncompressed_point(w).test_time,
        iterations=4000,
        seed=7,
    )
    exact_16 = next(r for r in rows if r[1] == 16)[3]
    assert sa.makespan <= exact_16 * 1.15
    rows = rows + [("d695-6core (SA)", 16, sa.makespan, exact_16, sa.makespan / exact_16, "-")]
    record(
        "ablation_optimality.txt",
        format_table(
            ["instance", "W", "heuristic", "optimal", "ratio", "B&B nodes"],
            [(i, w, h, e, round(r, 4), n) for i, w, h, e, r, n in rows]
            + [
                (
                    "random-5core (x6)",
                    8,
                    "-",
                    "-",
                    f"worst {max(gaps):.4f}",
                    "-",
                )
            ],
            title="Ablation A5 -- list-heuristic makespan vs exact optimum",
        ),
    )

    # Heuristic can never beat the optimum, and stays within 10% here.
    for _, _, heuristic, exact, ratio, _ in rows:
        assert heuristic >= exact
        assert ratio <= 1.10
    assert max(gaps) <= 1.10
