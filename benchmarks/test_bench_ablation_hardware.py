"""Ablation A3 -- decompressor hardware cost versus test-time gain.

The paper argues the selective-encoding decompressor is cheap (a
5-FF/23-gate controller plus width-dependent mapping, under 1% of a
million-gate core).  This bench plans System2 with TDC, tallies the
implied decompressor instances, and relates the silicon cost to the
test-time gain.
"""

from conftest import run_once

from repro.core.hardware import architecture_hardware_cost, decompressor_cost
from repro.core.optimizer import optimize_soc
from repro.reporting.tables import format_table
from repro.soc.industrial import industrial_system


def _plan():
    soc = industrial_system("System2")
    plain = optimize_soc(soc, 32, compression=False)
    packed = optimize_soc(soc, 32, compression=True)
    return soc, plain, packed


def test_hardware_cost_vs_gain(benchmark, record):
    soc, plain, packed = run_once(benchmark, _plan)

    rows = []
    for slot in packed.architecture.scheduled:
        config = slot.config
        if not config.uses_compression:
            continue
        cost = decompressor_cost(config.wrapper_chains, config.code_width)
        core = soc.core(config.core_name)
        rows.append(
            (
                config.core_name,
                config.code_width,
                config.wrapper_chains,
                cost.gates,
                cost.flip_flops,
                round(100 * cost.area_fraction(core.gates), 3),
            )
        )
    total = architecture_hardware_cost(packed.architecture)
    gain = plain.test_time / packed.test_time
    table = format_table(
        ["core", "w", "m", "gates", "flip-flops", "area %"],
        rows,
        title=(
            "Ablation A3 -- System2 at W=32: decompressor cost per core "
            f"(total {total.gates} gates + {total.flip_flops} FFs buys a "
            f"{gain:.1f}x test-time gain)"
        ),
    )
    record("ablation_hardware.txt", table)

    # Every instance stays below 1% of its core.
    assert all(area < 1.0 for *_, area in rows)
    # The whole TDC infrastructure is below 1% of the SOC.
    assert total.area_fraction(soc.gates) < 0.01
    # And it buys a large test-time gain.
    assert gain > 3.0


def test_cost_scales_with_interface(benchmark, record):
    def sweep():
        return [(m, decompressor_cost(m)) for m in (16, 64, 128, 256, 512)]

    results = run_once(benchmark, sweep)
    record(
        "ablation_hardware_scaling.txt",
        format_table(
            ["m", "w", "gates", "flip-flops"],
            [(m, c.code_width, c.gates, c.flip_flops) for m, c in results],
            title="Ablation A3b -- decompressor cost scaling",
        ),
    )
    gates = [c.gates for _, c in results]
    assert all(b > a for a, b in zip(gates, gates[1:]))
